package estimator

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
	"surfdeformer/internal/store"
)

func TestLambdaModelMonotone(t *testing.T) {
	m := DefaultLambda()
	prev := 1.0
	for d := 3; d <= 27; d += 2 {
		lam := m.Rate(d)
		if lam >= prev {
			t.Errorf("λ(%d) = %v not decreasing", d, lam)
		}
		prev = lam
	}
	if m.Rate(1) != 0.5 {
		t.Error("d<2 must saturate at 0.5")
	}
	if m.RateAt(2e-3, 9) <= m.Rate(9) {
		t.Error("higher physical rate must raise λ")
	}
}

func TestCalibrateRecoversModel(t *testing.T) {
	// Calibrate against real simulations at measurable settings; the fit
	// must interpolate its own calibration points within a factor ~3.
	m, pts, err := Calibrate([]float64{4e-3, 6e-3}, []int{3, 5}, 4, 3000,
		decoder.UnionFindFactory(), 17)
	if err != nil {
		t.Fatalf("calibration failed: %v", err)
	}
	if m.PThreshold < 1e-3 || m.PThreshold > 0.1 {
		t.Errorf("fitted threshold %.4g implausible", m.PThreshold)
	}
	for _, pt := range pts {
		pred := m.RateAt(pt.P, pt.D)
		ratio := pred / pt.Lambda
		if ratio < 1.0/4 || ratio > 4 {
			t.Errorf("fit at p=%v d=%d off by %.2fx (measured %v, predicted %v)",
				pt.P, pt.D, ratio, pt.Lambda, pred)
		}
	}
	t.Logf("fitted A=%.3g p_th=%.3g from %d points", m.A, m.PThreshold, len(pts))
}

// The adaptive calibration path must fit a plausible model, obey the
// point-worker determinism contract, and resume from the store without
// recomputing any point.
func TestCalibrateAdaptiveStoreResume(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "cal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	opts := CalibrateOptions{
		Rounds: 4, Shots: 20000, TargetRSE: 0.25,
		Factory: decoder.UnionFindFactory(), Decoder: "uf",
		Seed: 17, Store: st, Resume: true,
	}
	ps, ds := []float64{4e-3, 6e-3}, []int{3, 5}

	var computed, skipped atomic.Int64 // OnPoint may be called concurrently
	opts.OnPoint = func(fromStore bool) {
		if fromStore {
			skipped.Add(1)
		} else {
			computed.Add(1)
		}
	}
	m1, pts1, err := CalibrateOpts(ps, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if int(computed.Load()) != len(ps)*len(ds) || skipped.Load() != 0 {
		t.Fatalf("first pass: computed %d, skipped %d", computed.Load(), skipped.Load())
	}
	if m1.PThreshold < 1e-3 || m1.PThreshold > 0.1 {
		t.Errorf("adaptive fit threshold %.4g implausible", m1.PThreshold)
	}

	// Second pass: everything served from the store, identical fit, and
	// parallel point workers must not change anything.
	computed.Store(0)
	skipped.Store(0)
	opts.PointWorkers = 4
	m2, pts2, err := CalibrateOpts(ps, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 0 || int(skipped.Load()) != len(ps)*len(ds) {
		t.Fatalf("resume pass: computed %d, skipped %d", computed.Load(), skipped.Load())
	}
	if *m1 != *m2 || !reflect.DeepEqual(pts1, pts2) {
		t.Fatalf("resumed fit diverges: %+v vs %+v", m1, m2)
	}
}

// Adaptive early stopping must actually save shots versus the fixed
// budget at an easily-measurable configuration.
func TestCalibrateAdaptiveSavesShots(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "cal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, _, err = CalibrateOpts([]float64{6e-3}, []int{3, 5, 7}, CalibrateOptions{
		Rounds: 4, Shots: 200000, TargetRSE: 0.2,
		Factory: decoder.UnionFindFactory(), Decoder: "uf",
		Seed: 17, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range st.Keys() {
		pt, _ := st.Get(key)
		if pt.Shots >= 200000 {
			t.Errorf("point %s burned the full budget (%d shots) despite TargetRSE", key, pt.Shots)
		}
	}
}

func TestEstimateProgramOrdering(t *testing.T) {
	// The core Table II shape: at equal d, Surf-Deformer's retry risk is
	// far below ASC-S's; Q3DE reports OverRuntime; larger d reduces risk.
	prog := program.Simon(400, 1000)
	dm := defect.Paper()
	lm := DefaultLambda()
	fws := DefaultFrameworks()
	rng := rand.New(rand.NewSource(1))
	d := 19
	dd := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)

	surf := EstimateProgram(prog, fws[layout.SurfDeformer], d, dd, dm, lm, 40, rng)
	asc := EstimateProgram(prog, fws[layout.ASCS], d, dd, dm, lm, 40, rng)
	q3de := EstimateProgram(prog, fws[layout.Q3DE], d, dd, dm, lm, 40, rng)

	if !q3de.OverRuntime {
		t.Error("Q3DE on the fixed layout must report OverRuntime")
	}
	if surf.OverRuntime || asc.OverRuntime {
		t.Error("Surf-Deformer and ASC-S must not stall")
	}
	if surf.RetryRisk <= 0 || surf.RetryRisk >= 1 {
		t.Errorf("Surf retry risk %.4f out of range", surf.RetryRisk)
	}
	if asc.RetryRisk < 5*surf.RetryRisk {
		t.Errorf("ASC risk %.4f should be well above Surf risk %.4f", asc.RetryRisk, surf.RetryRisk)
	}
	surf21 := EstimateProgram(prog, fws[layout.SurfDeformer], 21, dd, dm, lm, 40, rng)
	if surf21.RetryRisk >= surf.RetryRisk {
		t.Errorf("d=21 risk %.4f should be below d=19 risk %.4f", surf21.RetryRisk, surf.RetryRisk)
	}
	if surf.PhysicalQubits <= asc.PhysicalQubits {
		t.Error("Surf layout must cost more qubits than ASC at equal d")
	}
}

func TestMinimalDistanceSearch(t *testing.T) {
	prog := program.Grover(9, 80)
	dm := defect.Paper()
	lm := DefaultLambda()
	fw := DefaultFrameworks()[layout.SurfDeformer]
	rng := rand.New(rand.NewSource(2))
	deltaD := func(d int) int { return layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock) }
	est, ok := MinimalDistance(prog, fw, 0.01, deltaD, dm, lm, 20, 41, rng)
	if !ok {
		t.Fatalf("no distance up to 41 met 1%% (got %.4f at d=%d)", est.RetryRisk, est.D)
	}
	if est.RetryRisk > 0.01 {
		t.Errorf("returned estimate %.4f misses target", est.RetryRisk)
	}
	// The distance below must fail the target (minimality).
	below := EstimateProgram(prog, fw, est.D-2, deltaD(est.D-2), dm, lm, 20, rng)
	if est.D > 3 && below.RetryRisk <= 0.01 {
		t.Errorf("d=%d already meets target; %d not minimal", est.D-2, est.D)
	}
}

func TestLatticeSurgeryUntreatedIsWorst(t *testing.T) {
	prog := program.Simon(400, 1000)
	dm := defect.Paper()
	lm := DefaultLambda()
	fws := DefaultFrameworks()
	rng := rand.New(rand.NewSource(3))
	d := 19
	ls := EstimateProgram(prog, fws[layout.LatticeSurgery], d, 0, dm, lm, 30, rng)
	surf := EstimateProgram(prog, fws[layout.SurfDeformer], d, 4, dm, lm, 30, rng)
	if ls.RetryRisk < surf.RetryRisk*10 {
		t.Errorf("untreated LS risk %.4f should dwarf Surf risk %.4f", ls.RetryRisk, surf.RetryRisk)
	}
}
