package estimator

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/layout"
)

func TestFitLossOrdering(t *testing.T) {
	dm := defect.Paper()
	rng := rand.New(rand.NewSource(5))
	d := 11
	surf := FitLoss(d, deform.PolicySurfDeformer, 4, dm, 8, rng)
	asc := FitLoss(d, deform.PolicyASC, 0, dm, 8, rng)
	t.Logf("fitted: surf transient=%d permanent=%d; asc transient=%d permanent=%d",
		surf.TransientLoss, surf.WindowLoss, asc.TransientLoss, asc.WindowLoss)
	// Surf-Deformer's enlargement must reclaim more distance than ASC's
	// never-recover policy.
	if surf.WindowLoss > asc.WindowLoss {
		t.Errorf("surf permanent loss %d exceeds asc %d", surf.WindowLoss, asc.WindowLoss)
	}
	// A radius-2 event (25 sites) on a d=11 patch costs real distance but
	// cannot exceed d-2 on average.
	if surf.TransientLoss < 1 || surf.TransientLoss > d-2 {
		t.Errorf("surf transient loss %d implausible", surf.TransientLoss)
	}
	if asc.WindowLoss < surf.TransientLoss-2 {
		t.Errorf("asc permanent loss %d suspiciously small", asc.WindowLoss)
	}
}

func TestFittedFrameworks(t *testing.T) {
	dm := defect.Paper()
	rng := rand.New(rand.NewSource(6))
	fws := FittedFrameworks(9, 4, 5, dm, rng)
	if fws[layout.SurfDeformer].Loss.WindowLoss > fws[layout.ASCS].Loss.WindowLoss {
		t.Error("fitted surf permanent loss should not exceed asc's")
	}
	// The non-fitted schemes keep their defaults.
	if fws[layout.Q3DE] != DefaultFrameworks()[layout.Q3DE] {
		t.Error("Q3DE framework should be untouched by fitting")
	}
}
