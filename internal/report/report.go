// Package report renders experiment results as aligned text, CSV or JSON —
// the output layer of cmd/surfdeform, so regenerated tables and figures can
// feed plotting scripts directly.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Format selects an output encoding.
type Format string

// Supported encodings.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, JSON:
		return Format(s), nil
	}
	return "", fmt.Errorf("report: unknown format %q (want text, csv or json)", s)
}

// Table is a generic named result table.
type Table struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// New creates an empty table with the given columns.
func New(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// Add appends a row; values are stringified with %v, floats with %g.
func (t *Table) Add(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", x)
		case float32:
			row[i] = fmt.Sprintf("%.6g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table in the requested format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case CSV:
		return t.WriteCSV(w)
	case JSON:
		return t.WriteJSON(w)
	default:
		return t.WriteText(w)
	}
}

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders RFC-4180 CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as one JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
