package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("fig-x", "d", "rate", "scheme")
	t.Add(9, 0.00123456789, "surf-deformer")
	t.Add(21, 1.5e-10, "asc,s") // comma exercises CSV quoting
	return t
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "json"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format must be rejected")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "d ") {
		t.Errorf("header = %q", lines[0])
	}
	// Alignment: every line must place "scheme" column at same offset.
	off := strings.Index(lines[0], "scheme")
	if !strings.Contains(lines[1][off:], "surf") {
		t.Error("column misaligned")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "d,rate,scheme\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"asc,s"`) {
		t.Error("CSV must quote cells containing commas")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Table
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "fig-x" || len(decoded.Rows) != 2 {
		t.Errorf("round trip lost data: %+v", decoded)
	}
}

func TestWriteDispatch(t *testing.T) {
	for _, f := range []Format{Text, CSV, JSON} {
		var buf bytes.Buffer
		if err := sample().Write(&buf, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%v produced no output", f)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("t", "v")
	tb.Add(float64(0.000015))
	if tb.Rows[0][0] != "1.5e-05" {
		t.Errorf("float formatting = %q", tb.Rows[0][0])
	}
	tb.Add(float32(2.5))
	if tb.Rows[1][0] != "2.5" {
		t.Errorf("float32 formatting = %q", tb.Rows[1][0])
	}
}
