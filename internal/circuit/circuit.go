// Package circuit lowers a (possibly deformed) code.Code to the syndrome
// extraction schedule executed every QEC cycle: which operator is measured
// through which ancilla, in which CNOT order, and on which round parity.
//
// Plain stabilizers are measured every round through their ancilla. Gauge
// operators anti-commute with opposite-type gauge operators sharing their
// super-stabilizer region, so X-type gauges are measured on even rounds and
// Z-type gauges on odd rounds; the super-stabilizer values are the products
// of their members' outcomes and form detectors across a two-round period
// (the paper's §II-C measurement scheme). Weight-1 direct gauges and direct
// stabilizers are measured on the data qubit itself.
package circuit

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

// EveryRound marks an operator measured in all rounds; parities 0 and 1
// restrict measurement to even or odd rounds.
const EveryRound = -1

// MeasuredOp is one measurement slot of the per-round schedule.
type MeasuredOp struct {
	Slot    int
	Basis   lattice.CheckType // X: |+> ancilla, CX anc→data, MX; Z: |0>, CX data→anc, MZ
	Ancilla lattice.Coord
	Data    []lattice.Coord // CNOT targets in schedule order
	Direct  bool            // measured directly on the data qubit (weight 1)
	Parity  int             // EveryRound, 0 or 1
}

// Observable is a deterministic parity check the decoder can track: a
// stabilizer whose value each round is the XOR of the listed slots.
type Observable struct {
	StabID  int
	Type    lattice.CheckType
	Op      code.Stab
	Slots   []int // measurement slots whose XOR yields the value
	Parity  int   // EveryRound, or the parity of rounds where available
	Support []lattice.Coord
}

// Schedule is the full syndrome-extraction program of one code.
type Schedule struct {
	Code        *code.Code
	Ops         []MeasuredOp
	Observables []Observable
}

// xOrder and zOrder are the standard rotated-surface-code CNOT dances: the
// "Z" pattern for X checks and the "N" pattern for Z checks, which together
// are conflict-free and avoid distance-halving hook errors.
var xOrder = [4]lattice.Coord{{Row: -1, Col: -1}, {Row: -1, Col: 1}, {Row: 1, Col: -1}, {Row: 1, Col: 1}}
var zOrder = [4]lattice.Coord{{Row: -1, Col: -1}, {Row: 1, Col: -1}, {Row: -1, Col: 1}, {Row: 1, Col: 1}}

// NewSchedule lowers the code to its measurement schedule.
func NewSchedule(c *code.Code) (*Schedule, error) {
	s := &Schedule{Code: c}
	slotOf := map[int]int{} // stab/gauge ID -> slot

	addOp := func(op MeasuredOp) int {
		op.Slot = len(s.Ops)
		s.Ops = append(s.Ops, op)
		return op.Slot
	}

	for _, g := range c.Gauges() {
		typ, ok := g.Op.CSSType()
		if !ok {
			return nil, fmt.Errorf("circuit: gauge %d is not CSS", g.ID)
		}
		parity := 0
		if typ == lattice.ZCheck {
			parity = 1
		}
		if g.Direct {
			supp := g.Op.Support()
			if len(supp) != 1 {
				return nil, fmt.Errorf("circuit: direct gauge %d has weight %d", g.ID, len(supp))
			}
			slotOf[g.ID] = addOp(MeasuredOp{Basis: typ, Ancilla: supp[0], Data: supp, Direct: true, Parity: parity})
			continue
		}
		slotOf[g.ID] = addOp(MeasuredOp{Basis: typ, Ancilla: g.Ancilla, Data: scheduleOrder(g.Ancilla, g.Op.Support(), typ), Parity: parity})
	}

	for _, st := range c.Stabs() {
		typ, ok := st.Op.CSSType()
		if !ok {
			return nil, fmt.Errorf("circuit: stabilizer %d is not CSS", st.ID)
		}
		obs := Observable{StabID: st.ID, Type: typ, Op: st, Parity: EveryRound, Support: st.Op.Support()}
		switch {
		case st.IsSuper():
			memberParity := EveryRound
			for _, id := range st.MemberIDs {
				slot, ok := slotOf[id]
				if !ok {
					return nil, fmt.Errorf("circuit: super-stabilizer %d references unmeasured gauge %d", st.ID, id)
				}
				p := s.Ops[slot].Parity
				if memberParity == EveryRound {
					memberParity = p
				} else if memberParity != p {
					return nil, fmt.Errorf("circuit: super-stabilizer %d mixes member parities", st.ID)
				}
				obs.Slots = append(obs.Slots, slot)
			}
			obs.Parity = memberParity
		case st.Direct:
			supp := st.Op.Support()
			slot := addOp(MeasuredOp{Basis: typ, Ancilla: supp[0], Data: supp, Direct: true, Parity: EveryRound})
			obs.Slots = []int{slot}
		default:
			slot := addOp(MeasuredOp{Basis: typ, Ancilla: st.Ancilla, Data: scheduleOrder(st.Ancilla, st.Op.Support(), typ), Parity: EveryRound})
			obs.Slots = []int{slot}
		}
		s.Observables = append(s.Observables, obs)
	}
	return s, nil
}

// scheduleOrder sorts a check's support into its CNOT dance order. Checks
// whose support matches the standard diagonal-neighbour pattern use the
// conflict-free dance; merged checks with far-flung support fall back to
// row-major order (their circuits are an abstraction for the re-routed
// measurement of a merged boundary check).
func scheduleOrder(ancilla lattice.Coord, support []lattice.Coord, typ lattice.CheckType) []lattice.Coord {
	order := xOrder
	if typ == lattice.ZCheck {
		order = zOrder
	}
	var out []lattice.Coord
	used := make(map[lattice.Coord]bool, len(support))
	for _, off := range order {
		q := ancilla.Add(off)
		for _, sq := range support {
			if sq == q {
				out = append(out, q)
				used[q] = true
			}
		}
	}
	// Append non-diagonal support (merged checks) in row-major order.
	rest := make([]lattice.Coord, 0, len(support))
	for _, q := range support {
		if !used[q] {
			rest = append(rest, q)
		}
	}
	lattice.SortCoords(rest)
	return append(out, rest...)
}

// MeasuredThisRound reports whether the op fires in the given round.
func (m MeasuredOp) MeasuredThisRound(round int) bool {
	return m.Parity == EveryRound || m.Parity == round%2
}

// AvailableThisRound reports whether the observable's value is produced in
// the given round.
func (o Observable) AvailableThisRound(round int) bool {
	return o.Parity == EveryRound || o.Parity == round%2
}

// NumSlots returns the number of measurement slots per full period.
func (s *Schedule) NumSlots() int { return len(s.Ops) }
