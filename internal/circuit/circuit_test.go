package circuit

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

func freshSchedule(t *testing.T, d int) (*code.Code, *Schedule) {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	s, err := NewSchedule(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestFreshScheduleShape(t *testing.T) {
	c, s := freshSchedule(t, 3)
	if len(s.Ops) != len(c.Stabs()) {
		t.Errorf("%d measured ops, want one per stabilizer (%d)", len(s.Ops), len(c.Stabs()))
	}
	if len(s.Observables) != len(c.Stabs()) {
		t.Errorf("%d observables, want %d", len(s.Observables), len(c.Stabs()))
	}
	for _, op := range s.Ops {
		if op.Parity != EveryRound {
			t.Error("fresh code ops must be measured every round")
		}
		if op.Direct {
			t.Error("fresh code has no direct measurements")
		}
		if len(op.Data) < 2 || len(op.Data) > 4 {
			t.Errorf("op at %v has %d CNOTs", op.Ancilla, len(op.Data))
		}
	}
}

func TestCNOTDanceOrders(t *testing.T) {
	_, s := freshSchedule(t, 5)
	// Weight-4 checks must follow the fixed dance; verify the first target
	// is the NW neighbour for both types.
	for _, op := range s.Ops {
		if len(op.Data) != 4 {
			continue
		}
		nw := op.Ancilla.Add(lattice.Coord{Row: -1, Col: -1})
		if op.Data[0] != nw {
			t.Errorf("op at %v starts dance at %v, want NW %v", op.Ancilla, op.Data[0], nw)
		}
		// X and Z dances must differ in the middle steps to stay
		// conflict-free.
		if op.Basis == lattice.XCheck {
			if op.Data[1] != op.Ancilla.Add(lattice.Coord{Row: -1, Col: 1}) {
				t.Errorf("X dance step 2 wrong at %v", op.Ancilla)
			}
		} else {
			if op.Data[1] != op.Ancilla.Add(lattice.Coord{Row: 1, Col: -1}) {
				t.Errorf("Z dance step 2 wrong at %v", op.Ancilla)
			}
		}
	}
}

func TestScheduleForDeformedCode(t *testing.T) {
	// Build a DataQRM-deformed code by hand and verify alternating gauge
	// parities and super-stabilizer observables.
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	q0 := lattice.Coord{Row: 3, Col: 3}
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		var ids []int
		var prod pauli.Op
		for _, st := range c.StabsOn(q0, typ) {
			prod = pauli.Mul(prod, st.Op)
			c.RemoveStab(st.ID)
			ids = append(ids, c.AddGauge(st.Op.RestrictedTo(notQ0), st.Ancilla, false))
		}
		c.AddSuperStab(prod.RestrictedTo(notQ0), ids)
	}
	if err := c.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSchedule(c)
	if err != nil {
		t.Fatal(err)
	}
	var xGauge, zGauge, superObs int
	for _, op := range s.Ops {
		switch op.Parity {
		case 0:
			if op.Basis != lattice.XCheck {
				t.Error("even-round slots must be X gauges")
			}
			xGauge++
		case 1:
			if op.Basis != lattice.ZCheck {
				t.Error("odd-round slots must be Z gauges")
			}
			zGauge++
		}
	}
	if xGauge != 2 || zGauge != 2 {
		t.Errorf("gauge slots X=%d Z=%d, want 2/2", xGauge, zGauge)
	}
	for _, obs := range s.Observables {
		if len(obs.Slots) == 2 {
			superObs++
			if obs.Parity == EveryRound {
				t.Error("super-stabilizer observable must be parity-restricted")
			}
		}
	}
	if superObs != 2 {
		t.Errorf("%d super observables, want 2", superObs)
	}
}

func TestDirectGaugeSchedule(t *testing.T) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	q := c.DataQubits()[0]
	c.AddGauge(pauli.X(q), q, true)
	s, err := NewSchedule(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range s.Ops {
		if op.Direct {
			found = true
			if op.Ancilla != q || len(op.Data) != 1 {
				t.Error("direct op must target the data qubit itself")
			}
			if op.Parity != 0 {
				t.Error("X-type direct gauge measures on even rounds")
			}
		}
	}
	if !found {
		t.Fatal("direct gauge produced no measurement slot")
	}
}

func TestMeasuredThisRound(t *testing.T) {
	every := MeasuredOp{Parity: EveryRound}
	even := MeasuredOp{Parity: 0}
	odd := MeasuredOp{Parity: 1}
	for r := 0; r < 4; r++ {
		if !every.MeasuredThisRound(r) {
			t.Error("EveryRound must fire every round")
		}
		if even.MeasuredThisRound(r) != (r%2 == 0) {
			t.Errorf("even-parity op wrong at round %d", r)
		}
		if odd.MeasuredThisRound(r) != (r%2 == 1) {
			t.Errorf("odd-parity op wrong at round %d", r)
		}
	}
}
