// Package core wires the Surf-Deformer framework of the paper's fig. 5:
// the compile-time qubit layout generator and the runtime code deformation
// unit, integrated with the surrounding surface-code components (program
// compiler, defect detector, execution estimator).
package core

import (
	"fmt"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
)

// Framework bundles the models the compile-time planner consumes: the
// dynamic defect error model, the logical-error extrapolation model, and
// the target failure thresholds.
type Framework struct {
	Defects     *defect.Model
	Lambda      *estimator.LambdaModel
	TargetRetry float64 // e.g. 0.01 for a 1% retry risk
	AlphaBlock  float64 // Eq. 1 channel-blocking threshold
	Trials      int     // Monte-Carlo trials for retry estimation
	MaxDistance int
	Seed        int64
}

// NewFramework returns a framework with the paper's defaults: the cosmic-
// ray defect model, the calibrated Λ model, a 0.1% retry target and a 1%
// blocking threshold.
func NewFramework() *Framework {
	return &Framework{
		Defects:     defect.Paper(),
		Lambda:      estimator.DefaultLambda(),
		TargetRetry: 0.001,
		AlphaBlock:  layout.DefaultAlphaBlock,
		Trials:      50,
		MaxDistance: 61,
		Seed:        1,
	}
}

// Plan is the compile-time output (fig. 5's "Output: code distance, extra
// interspace, optimized qubit layout").
type Plan struct {
	Program  *program.Program
	D        int
	DeltaD   int
	Layout   *layout.Layout
	Estimate *estimator.Estimate
}

// Compile runs the layout generator: it chooses the code distance d meeting
// the retry target under the defect model, computes the extra inter-space
// Δd per Eq. 1, and emits the placement.
func (f *Framework) Compile(prog *program.Program) (*Plan, error) {
	rng := rand.New(rand.NewSource(f.Seed))
	fw := estimator.DefaultFrameworks()[layout.SurfDeformer]
	deltaDFor := func(d int) int { return layout.ChooseDeltaD(f.Defects, d, f.AlphaBlock) }
	est, ok := estimator.MinimalDistance(prog, fw, f.TargetRetry, deltaDFor,
		f.Defects, f.Lambda, f.Trials, f.MaxDistance, rng)
	if !ok {
		return nil, fmt.Errorf("core: no distance ≤ %d meets retry target %v (best %.4f at d=%d)",
			f.MaxDistance, f.TargetRetry, est.RetryRisk, est.D)
	}
	lay := layout.New(layout.SurfDeformer, prog.LogicalQubits(), est.D, est.DeltaD)
	return &Plan{Program: prog, D: est.D, DeltaD: est.DeltaD, Layout: lay, Estimate: est}, nil
}

// NewUnit instantiates the runtime code deformation unit for patch i of the
// plan's layout, budgeted with the plan's Δd growth reserve.
func (p *Plan) NewUnit(i int) *deform.Unit {
	return p.NewUnitWith(i, deform.PolicySurfDeformer, deform.UniformBudget(p.DeltaD))
}

// NewUnitWith instantiates patch i's deformation unit under an explicit
// removal policy and growth budget — the hook comparative studies (ASC-S
// versus Surf-Deformer on the same layout) use to run the runtime loop with
// a different mitigation strategy per arm.
func (p *Plan) NewUnitWith(i int, policy deform.Policy, budget deform.Budget) *deform.Unit {
	origin := p.Layout.PatchOrigin(i)
	return deform.NewUnit(origin, p.D, p.D, policy, budget)
}

// UnitAt builds a standalone deformation unit for a d×d patch at origin —
// the runtime component usable without a full program plan.
func UnitAt(origin lattice.Coord, d, deltaD int) *deform.Unit {
	return deform.NewUnit(origin, d, d, deform.PolicySurfDeformer, deform.UniformBudget(deltaD))
}
