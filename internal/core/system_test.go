package core

import (
	"testing"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
	"surfdeformer/internal/route"
)

func testPlan(t *testing.T) *Plan {
	t.Helper()
	fw := NewFramework()
	fw.TargetRetry = 0.05
	fw.Trials = 10
	plan, err := fw.Compile(program.Simon(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSystemLifecycle(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	if sys.NumPatches() != plan.Layout.N {
		t.Fatalf("system manages %d patches, want %d", sys.NumPatches(), plan.Layout.N)
	}
	// Strike patch 0 with an interior defect relative to its origin.
	origin := plan.Layout.PatchOrigin(0)
	strike := []lattice.Coord{{Row: origin.Row + 3, Col: origin.Col + 3}}
	res, err := sys.Step(0, strike)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistanceX < plan.D || res.DistanceZ < plan.D {
		t.Errorf("patch 0 distances %d/%d below plan d=%d", res.DistanceX, res.DistanceZ, plan.D)
	}
	// Growth within the Δd reserve must not block channels.
	if sys.Blocked(0) {
		t.Error("in-reserve growth should not block channels")
	}
	// Recovery restores the pristine footprint.
	if _, err := sys.Recover(0, strike); err != nil {
		t.Fatal(err)
	}
	if sys.Blocked(0) {
		t.Error("recovered patch must not block")
	}
}

func TestSystemGridReflectsBlockage(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	// Force a blockage by marking it directly (growth beyond reserve is
	// prevented by the budget, so emulate an over-grown patch).
	sys.blocked[1] = true
	g := sys.Grid()
	r, c := plan.Layout.PatchCell(1)
	if !g.Blocked(g.Cell(r, c)) {
		t.Error("grid must mirror blocked patches")
	}
	// Routing through the grid avoids the blocked patch.
	var pending []route.CNOT
	if plan.Layout.N >= 4 {
		pending = append(pending, route.CNOT{Control: 0, Target: plan.Layout.N - 1})
	}
	routed := g.RoutePaths(pending, 0, nil)
	if len(pending) > 0 && len(routed) == 0 {
		t.Error("unblocked endpoints should remain routable")
	}
}

// TestUpdateBlockedBoundary pins the layout-reserve semantics of the
// channel bookkeeping: a patch blocks its channels exactly when its growth
// exceeds Δd layers on some side. One grown layer moves the bounding box by
// 2 in doubled coordinates, so the thresholds are 2·reserve.
func TestUpdateBlockedBoundary(t *testing.T) {
	const d, deltaD = 5, 2
	cases := []struct {
		name    string
		layers  map[lattice.Side]int
		blocked bool
	}{
		{"no growth", nil, false},
		{"one layer right", map[lattice.Side]int{lattice.Right: 1}, false},
		{"exactly reserve right", map[lattice.Side]int{lattice.Right: deltaD}, false},
		{"exactly reserve left", map[lattice.Side]int{lattice.Left: deltaD}, false},
		{"exactly reserve top", map[lattice.Side]int{lattice.Top: deltaD}, false},
		{"exactly reserve bottom", map[lattice.Side]int{lattice.Bottom: deltaD}, false},
		{"reserve+1 right", map[lattice.Side]int{lattice.Right: deltaD + 1}, true},
		{"reserve+1 left", map[lattice.Side]int{lattice.Left: deltaD + 1}, true},
		{"reserve+1 top", map[lattice.Side]int{lattice.Top: deltaD + 1}, true},
		{"reserve+1 bottom", map[lattice.Side]int{lattice.Bottom: deltaD + 1}, true},
		// The reserve is per side: full growth on two opposite sides still
		// fits each side's own channel allowance.
		{"reserve on both columns", map[lattice.Side]int{lattice.Left: deltaD, lattice.Right: deltaD}, false},
		{"reserve everywhere", map[lattice.Side]int{
			lattice.Left: deltaD, lattice.Right: deltaD, lattice.Top: deltaD, lattice.Bottom: deltaD}, false},
		{"one side over among many", map[lattice.Side]int{
			lattice.Left: deltaD, lattice.Right: deltaD, lattice.Top: deltaD + 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := &Plan{D: d, DeltaD: deltaD, Layout: layout.New(layout.SurfDeformer, 2, d, deltaD)}
			sys := plan.NewSystem()
			spec := sys.units[0].Spec()
			for side, n := range tc.layers {
				if n > 0 {
					if err := spec.PatchQADD(side, n); err != nil {
						t.Fatal(err)
					}
				}
			}
			sys.updateBlocked(0)
			if got := sys.Blocked(0); got != tc.blocked {
				t.Errorf("growth %v: blocked = %v, want %v", tc.layers, got, tc.blocked)
			}
			// The untouched sibling patch never blocks.
			sys.updateBlocked(1)
			if sys.Blocked(1) {
				t.Error("pristine patch reported blocked")
			}
		})
	}
}

func TestSystemIndexBounds(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	if _, err := sys.Step(-1, nil); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := sys.Recover(sys.NumPatches(), nil); err == nil {
		t.Error("out-of-range index must fail")
	}
}

// TestSystemMitigationLadder pins the runtime policy hook: systems default
// to the full §VIII ladder and accept per-arm overrides (ablation arms
// disable tiers selectively).
func TestSystemMitigationLadder(t *testing.T) {
	lay := layout.New(layout.SurfDeformer, 1, 5, 2)
	plan := &Plan{D: 5, DeltaD: 2, Layout: lay}
	s := plan.NewSystem()
	m := s.Mitigation()
	if !m.Handles(defect.SeverityReweight) || !m.Handles(defect.SeveritySuper) || !m.Handles(defect.SeverityRemove) {
		t.Fatalf("default ladder %+v must enable all three tiers", m)
	}
	if m.Route(0.5) != defect.SeverityRemove || m.Route(0.09) != defect.SeveritySuper || m.Route(0.01) != defect.SeverityReweight {
		t.Error("default ladder misroutes severities")
	}
	s.SetMitigation(deform.Mitigation{DeformTier: true, SuperThreshold: 0.25, RemoveThreshold: 0.3})
	m = s.Mitigation()
	if m.Handles(defect.SeverityReweight) || m.Handles(defect.SeveritySuper) {
		t.Error("override did not disable the lower tiers")
	}
	// Custom boundaries reroute rates between the tiers.
	if m.Route(0.2) != defect.SeverityReweight || m.Route(0.25) != defect.SeveritySuper || m.Route(0.3) != defect.SeverityRemove {
		t.Error("custom severity boundaries not honored")
	}
	// Disabled-tier fallbacks resolve to the strongest enabled tier below.
	if eff, ok := m.Effective(defect.SeverityRemove); !ok || eff != defect.SeverityRemove {
		t.Error("remove severity must resolve to the deform tier")
	}
	if _, ok := m.Effective(defect.SeveritySuper); ok {
		t.Error("super severity must not resolve when super and reweight tiers are off")
	}
}
