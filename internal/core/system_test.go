package core

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/program"
	"surfdeformer/internal/route"
)

func testPlan(t *testing.T) *Plan {
	t.Helper()
	fw := NewFramework()
	fw.TargetRetry = 0.05
	fw.Trials = 10
	plan, err := fw.Compile(program.Simon(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSystemLifecycle(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	if sys.NumPatches() != plan.Layout.N {
		t.Fatalf("system manages %d patches, want %d", sys.NumPatches(), plan.Layout.N)
	}
	// Strike patch 0 with an interior defect relative to its origin.
	origin := plan.Layout.PatchOrigin(0)
	strike := []lattice.Coord{{Row: origin.Row + 3, Col: origin.Col + 3}}
	res, err := sys.Step(0, strike)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistanceX < plan.D || res.DistanceZ < plan.D {
		t.Errorf("patch 0 distances %d/%d below plan d=%d", res.DistanceX, res.DistanceZ, plan.D)
	}
	// Growth within the Δd reserve must not block channels.
	if sys.Blocked(0) {
		t.Error("in-reserve growth should not block channels")
	}
	// Recovery restores the pristine footprint.
	if _, err := sys.Recover(0, strike); err != nil {
		t.Fatal(err)
	}
	if sys.Blocked(0) {
		t.Error("recovered patch must not block")
	}
}

func TestSystemGridReflectsBlockage(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	// Force a blockage by marking it directly (growth beyond reserve is
	// prevented by the budget, so emulate an over-grown patch).
	sys.blocked[1] = true
	g := sys.Grid()
	r, c := plan.Layout.PatchCell(1)
	if !g.Blocked(g.Cell(r, c)) {
		t.Error("grid must mirror blocked patches")
	}
	// Routing through the grid avoids the blocked patch.
	rng := rand.New(rand.NewSource(1))
	var pending []route.CNOT
	if plan.Layout.N >= 4 {
		pending = append(pending, route.CNOT{Control: 0, Target: plan.Layout.N - 1})
	}
	routed := g.RoutePaths(pending, rng)
	if len(pending) > 0 && len(routed) == 0 {
		t.Error("unblocked endpoints should remain routable")
	}
}

func TestSystemIndexBounds(t *testing.T) {
	plan := testPlan(t)
	sys := plan.NewSystem()
	if _, err := sys.Step(-1, nil); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := sys.Recover(sys.NumPatches(), nil); err == nil {
		t.Error("out-of-range index must fail")
	}
}
