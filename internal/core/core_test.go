package core

import (
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/program"
)

func TestCompilePlan(t *testing.T) {
	fw := NewFramework()
	fw.TargetRetry = 0.01
	fw.Trials = 20
	plan, err := fw.Compile(program.Grover(9, 80))
	if err != nil {
		t.Fatal(err)
	}
	if plan.D < 3 {
		t.Errorf("planned d = %d", plan.D)
	}
	if plan.DeltaD < 1 {
		t.Errorf("planned Δd = %d", plan.DeltaD)
	}
	if plan.Estimate.RetryRisk > fw.TargetRetry {
		t.Errorf("plan risk %.4f exceeds target", plan.Estimate.RetryRisk)
	}
	if plan.Layout.PhysicalQubits() <= 0 {
		t.Error("layout must count qubits")
	}
	// Stricter targets demand at least as much distance.
	fw2 := NewFramework()
	fw2.TargetRetry = 0.0001
	fw2.Trials = 20
	plan2, err := fw2.Compile(program.Grover(9, 80))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.D < plan.D {
		t.Errorf("stricter target planned smaller d: %d < %d", plan2.D, plan.D)
	}
}

func TestPlanUnits(t *testing.T) {
	fw := NewFramework()
	fw.TargetRetry = 0.01
	fw.Trials = 15
	plan, err := fw.Compile(program.Simon(16, 10))
	if err != nil {
		t.Fatal(err)
	}
	u := plan.NewUnit(0)
	if u == nil {
		t.Fatal("nil unit")
	}
	min, _ := u.Spec().Bounds()
	if min != plan.Layout.PatchOrigin(0) {
		t.Error("unit not anchored at its patch origin")
	}
	// Units for distinct patches must not overlap.
	u1 := plan.NewUnit(1)
	min1, _ := u1.Spec().Bounds()
	if min1 == min {
		t.Error("distinct patches share an origin")
	}
}

func TestUnitAt(t *testing.T) {
	u := UnitAt(lattice.Coord{Row: 0, Col: 0}, 5, 2)
	res, err := u.Step([]lattice.Coord{{Row: 3, Col: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistanceX < 5 || res.DistanceZ < 5 {
		t.Errorf("distances %d/%d after step, want restored", res.DistanceX, res.DistanceZ)
	}
}
