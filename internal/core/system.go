package core

import (
	"fmt"

	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/route"
)

// System is the runtime manager of every logical patch in a plan: it owns
// one deformation unit per patch, tracks which patches have grown beyond
// their Δd reserve (blocking the surrounding communication channels,
// fig. 10), and exposes the current channel state to the router.
type System struct {
	plan       *Plan
	units      []*deform.Unit
	blocked    []bool
	mitigation deform.Mitigation
}

// NewSystem instantiates the runtime for all patches of the plan.
func (p *Plan) NewSystem() *System {
	return p.NewSystemWith(deform.PolicySurfDeformer, deform.UniformBudget(p.DeltaD))
}

// NewSystemWith instantiates the runtime with every patch's unit under an
// explicit removal policy and growth budget (see Plan.NewUnitWith).
func (p *Plan) NewSystemWith(policy deform.Policy, budget deform.Budget) *System {
	s := &System{plan: p, mitigation: deform.FullLadder()}
	n := p.Layout.N
	s.units = make([]*deform.Unit, n)
	s.blocked = make([]bool, n)
	for i := 0; i < n; i++ {
		s.units[i] = p.NewUnitWith(i, policy, budget)
	}
	return s
}

// NumPatches returns the number of managed logical patches.
func (s *System) NumPatches() int { return len(s.units) }

// Mitigation returns the runtime mitigation ladder (§VIII) declared for
// this system's patches; the default is the full ladder (reweight mild
// drift, deform severe defects).
func (s *System) Mitigation() deform.Mitigation { return s.mitigation }

// SetMitigation declares the runtime mitigation ladder. The ladder is
// carried state, not a gate inside System itself: Step and Recover always
// act when called, and it is the *detection loop* driving the system
// (e.g. the trajectory engine) that consults the ladder to decide what to
// route here versus to the decoder-prior tier — Route picks the tier,
// Handles says whether the policy enables it. Installing the ladder on
// the system keeps that declaration inspectable next to the units it
// governs (multi-patch consumers read it per system).
func (s *System) SetMitigation(m deform.Mitigation) { s.mitigation = m }

// Unit exposes the deformation unit of patch i.
func (s *System) Unit(i int) *deform.Unit { return s.units[i] }

// Step forwards a defect report to patch i's unit and updates the channel
// bookkeeping: a patch whose accumulated growth exceeds the layout's Δd
// reserve spills into its channels and blocks them until it shrinks back.
func (s *System) Step(i int, defects []lattice.Coord) (*deform.StepResult, error) {
	if i < 0 || i >= len(s.units) {
		return nil, fmt.Errorf("core: patch index %d out of range", i)
	}
	res, err := s.units[i].Step(defects)
	if err != nil {
		return nil, err
	}
	s.updateBlocked(i)
	return res, nil
}

// Recover forwards a recovery report to patch i's unit; shrinking may
// unblock its channels.
func (s *System) Recover(i int, sites []lattice.Coord) (*deform.StepResult, error) {
	if i < 0 || i >= len(s.units) {
		return nil, fmt.Errorf("core: patch index %d out of range", i)
	}
	res, err := s.units[i].Recover(sites)
	if err != nil {
		return nil, err
	}
	s.updateBlocked(i)
	return res, nil
}

// Super forwards a bandage super-stabilizer report to patch i's unit: the
// listed sites are isolated in place by gauge-merged super-stabilizers
// (the ladder's middle tier) instead of removal. Bandaging never grows the
// footprint, but the bookkeeping is refreshed for symmetry with Step.
func (s *System) Super(i int, sites []lattice.Coord) (*deform.StepResult, error) {
	if i < 0 || i >= len(s.units) {
		return nil, fmt.Errorf("core: patch index %d out of range", i)
	}
	res, err := s.units[i].Bandage(sites)
	if err != nil {
		return nil, err
	}
	s.updateBlocked(i)
	return res, nil
}

// Unbandage forwards the super-stabilizer undo path to patch i's unit: the
// listed sites are healthy again and their bandages are lifted.
func (s *System) Unbandage(i int, sites []lattice.Coord) (*deform.StepResult, error) {
	if i < 0 || i >= len(s.units) {
		return nil, fmt.Errorf("core: patch index %d out of range", i)
	}
	res, err := s.units[i].Unbandage(sites)
	if err != nil {
		return nil, err
	}
	s.updateBlocked(i)
	return res, nil
}

// Bandaged reports patch i's effective super-stabilizer membership: the
// sites whose bandages took effect at the last rebuild. Detection and
// decoding key the merged checks off the codes built by the unit; this
// report is the runtime's view of which sites those merges cover.
func (s *System) Bandaged(i int) []lattice.Coord {
	if i < 0 || i >= len(s.units) {
		return nil
	}
	return s.units[i].Bandaged()
}

// updateBlocked recomputes patch i's channel blockage from its current
// footprint versus the layout reserve.
func (s *System) updateBlocked(i int) {
	spec := s.units[i].Spec()
	// Growth beyond Δd layers on any side spills into the channel.
	over := false
	d := s.plan.D
	reserve := s.plan.DeltaD
	origin := s.plan.Layout.PatchOrigin(i)
	min, max := spec.Bounds()
	if origin.Col-min.Col > 2*reserve || max.Col-(origin.Col+2*d) > 2*reserve {
		over = true
	}
	if origin.Row-min.Row > 2*reserve || max.Row-(origin.Row+2*d) > 2*reserve {
		over = true
	}
	s.blocked[i] = over
}

// Blocked reports whether patch i currently blocks its channels.
func (s *System) Blocked(i int) bool { return s.blocked[i] }

// Grid materializes the current channel state for the router.
func (s *System) Grid() *route.Grid {
	g := route.NewGrid(s.plan.Layout.Rows, s.plan.Layout.Cols)
	for i, b := range s.blocked {
		if b {
			r, c := s.plan.Layout.PatchCell(i)
			g.SetBlocked(g.Cell(r, c), true)
		}
	}
	return g
}
