package lattice

import (
	"testing"
	"testing/quick"
)

func TestCoordOrdering(t *testing.T) {
	a := Coord{1, 5}
	b := Coord{2, 0}
	c := Coord{1, 6}
	if !a.Less(b) || !a.Less(c) || b.Less(a) {
		t.Error("row-major ordering violated")
	}
	cs := []Coord{b, c, a}
	SortCoords(cs)
	if cs[0] != a || cs[1] != c || cs[2] != b {
		t.Errorf("SortCoords = %v", cs)
	}
}

func TestCoordRoles(t *testing.T) {
	if !(Coord{1, 3}).IsData() {
		t.Error("(1,3) should be a data position")
	}
	if (Coord{1, 3}).IsCheck() {
		t.Error("(1,3) should not be a check position")
	}
	if !(Coord{2, 4}).IsCheck() {
		t.Error("(2,4) should be a check position")
	}
	if (Coord{2, 3}).IsData() || (Coord{2, 3}).IsCheck() {
		t.Error("(2,3) is neither data nor check")
	}
}

func TestDistances(t *testing.T) {
	a, b := Coord{0, 0}, Coord{3, -4}
	if got := Manhattan(a, b); got != 7 {
		t.Errorf("Manhattan = %d, want 7", got)
	}
	if got := Chebyshev(a, b); got != 4 {
		t.Errorf("Chebyshev = %d, want 4", got)
	}
}

func TestNewPatchCounts(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7, 9} {
		p := NewPatch(Coord{0, 0}, d)
		if len(p.Data) != d*d {
			t.Errorf("d=%d: data count %d, want %d", d, len(p.Data), d*d)
		}
		if len(p.Checks) != d*d-1 {
			t.Errorf("d=%d: check count %d, want %d", d, len(p.Checks), d*d-1)
		}
		nx, nz := 0, 0
		for _, ch := range p.Checks {
			if ch.Type == XCheck {
				nx++
			} else {
				nz++
			}
		}
		// Odd-distance codes balance X and Z checks exactly; even-distance
		// codes are off by one since the total d^2-1 is odd.
		diff := nx - nz
		if diff < 0 {
			diff = -diff
		}
		if d%2 == 1 && diff != 0 {
			t.Errorf("d=%d: X/Z check imbalance %d vs %d", d, nx, nz)
		}
		if d%2 == 0 && diff != 1 {
			t.Errorf("d=%d: X/Z check imbalance %d vs %d, want off-by-one", d, nx, nz)
		}
	}
}

func TestNewPatchChecksCommute(t *testing.T) {
	// Any two distinct checks must overlap on an even number of data qubits
	// when their types differ (X vs Z anti-commute per shared qubit).
	p := NewPatch(Coord{0, 0}, 5)
	for i, a := range p.Checks {
		for _, b := range p.Checks[i+1:] {
			if a.Type == b.Type {
				continue
			}
			n := 0
			for _, qa := range a.Support {
				for _, qb := range b.Support {
					if qa == qb {
						n++
					}
				}
			}
			if n%2 != 0 {
				t.Fatalf("checks %v and %v share %d qubits (odd)", a.Center, b.Center, n)
			}
		}
	}
}

func TestNewPatchLogicals(t *testing.T) {
	d := 5
	p := NewPatch(Coord{0, 0}, d)
	if len(p.LogicalX) != d || len(p.LogicalZ) != d {
		t.Fatalf("logical lengths %d/%d, want %d", len(p.LogicalX), len(p.LogicalZ), d)
	}
	// Logical X (X-type, vertical) must overlap every Z check evenly.
	inLX := map[Coord]bool{}
	for _, c := range p.LogicalX {
		inLX[c] = true
	}
	for _, ch := range p.Checks {
		if ch.Type != ZCheck {
			continue
		}
		n := 0
		for _, q := range ch.Support {
			if inLX[q] {
				n++
			}
		}
		if n%2 != 0 {
			t.Errorf("logical X anti-commutes with Z check at %v", ch.Center)
		}
	}
	// Logical Z (Z-type, horizontal) must overlap every X check evenly.
	inLZ := map[Coord]bool{}
	for _, c := range p.LogicalZ {
		inLZ[c] = true
	}
	for _, ch := range p.Checks {
		if ch.Type != XCheck {
			continue
		}
		n := 0
		for _, q := range ch.Support {
			if inLZ[q] {
				n++
			}
		}
		if n%2 != 0 {
			t.Errorf("logical Z anti-commutes with X check at %v", ch.Center)
		}
	}
	// The two logicals must anti-commute: odd intersection.
	n := 0
	for _, c := range p.LogicalX {
		if inLZ[c] {
			n++
		}
	}
	if n%2 != 1 {
		t.Errorf("logical X and Z intersect on %d qubits, want odd", n)
	}
}

func TestRectPatch(t *testing.T) {
	p := NewRectPatch(Coord{0, 0}, 3, 5) // 3 wide, 5 tall
	if len(p.Data) != 15 {
		t.Fatalf("data count %d, want 15", len(p.Data))
	}
	if len(p.LogicalZ) != 3 || len(p.LogicalX) != 5 {
		t.Fatalf("logical lengths Z=%d X=%d, want 3/5", len(p.LogicalZ), len(p.LogicalX))
	}
	if len(p.Checks) != 14 {
		t.Fatalf("check count %d, want n-k = 15-1 = 14", len(p.Checks))
	}
}

func TestPatchOffsetOrigin(t *testing.T) {
	p := NewPatch(Coord{10, 20}, 3)
	min, max := p.Bounds()
	if min != (Coord{10, 20}) || max != (Coord{16, 26}) {
		t.Fatalf("bounds %v-%v", min, max)
	}
	for _, c := range p.Data {
		if c.Row < min.Row || c.Row > max.Row || c.Col < min.Col || c.Col > max.Col {
			t.Errorf("data qubit %v outside bounds", c)
		}
		if !c.IsData() {
			t.Errorf("data qubit %v at non-data position", c)
		}
	}
	for _, ch := range p.Checks {
		if !ch.Center.IsCheck() {
			t.Errorf("check centre %v at non-check position", ch.Center)
		}
	}
}

func TestSideOf(t *testing.T) {
	p := NewPatch(Coord{0, 0}, 5)
	cases := []struct {
		c    Coord
		side Side
		ok   bool
	}{
		{Coord{1, 5}, Top, true},
		{Coord{9, 5}, Bottom, true},
		{Coord{5, 1}, Left, true},
		{Coord{5, 9}, Right, true},
		{Coord{5, 5}, Top, false}, // dead centre: interior
	}
	for _, tc := range cases {
		side, ok := p.SideOf(tc.c)
		if ok != tc.ok {
			t.Errorf("SideOf(%v) ok = %v, want %v", tc.c, ok, tc.ok)
			continue
		}
		if ok && side != tc.side {
			t.Errorf("SideOf(%v) = %v, want %v", tc.c, side, tc.side)
		}
	}
}

func TestCheckAt(t *testing.T) {
	p := NewPatch(Coord{0, 0}, 3)
	if _, ok := p.CheckAt(Coord{2, 2}); !ok {
		t.Error("expected a check at (2,2)")
	}
	if _, ok := p.CheckAt(Coord{0, 0}); ok {
		t.Error("no check should exist at the corner (0,0)")
	}
}

func TestNumQubits(t *testing.T) {
	// A distance-d rotated surface code uses d^2 + (d^2-1) = 2d^2-1 qubits.
	for _, d := range []int{3, 5, 7} {
		p := NewPatch(Coord{0, 0}, d)
		if got, want := p.NumQubits(), 2*d*d-1; got != want {
			t.Errorf("d=%d: NumQubits = %d, want %d", d, got, want)
		}
	}
}

func TestInvalidPatchPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPatch(Coord{1, 0}, 3) }, // odd origin
		func() { NewRectPatch(Coord{0, 0}, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: every data qubit of a patch is covered by at least one check of
// each type unless it sits on a boundary, in which case it is covered by at
// least one check overall.
func TestQuickPatchCoverage(t *testing.T) {
	f := func(seedD uint8) bool {
		d := 2 + int(seedD)%8
		p := NewPatch(Coord{0, 0}, d)
		cover := map[Coord]int{}
		for _, ch := range p.Checks {
			for _, q := range ch.Support {
				cover[q]++
			}
		}
		for _, q := range p.Data {
			if cover[q] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: check supports never exceed weight 4 and always have weight ≥2.
func TestQuickCheckWeights(t *testing.T) {
	f := func(seedD uint8) bool {
		d := 2 + int(seedD)%8
		p := NewPatch(Coord{0, 0}, d)
		for _, ch := range p.Checks {
			if len(ch.Support) < 2 || len(ch.Support) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
