// Package lattice provides the 2-D integer geometry underlying surface code
// patches: qubit coordinates, the rotated-surface-code construction, and
// neighbourhood/boundary helpers used by the deformation layer.
//
// Convention (matching the usual rotated surface code drawing):
//
//   - Data qubits sit at odd×odd coordinates (2i+1, 2j+1), i,j ∈ [0,d).
//   - Check (syndrome) qubits sit at even×even plaquette centres (2i, 2j),
//     i,j ∈ [0,d]; each acts on the ≤4 diagonal data neighbours.
//   - Plaquette type alternates in a checkerboard; X-type half-plaquettes
//     line the top and bottom boundaries, Z-type half-plaquettes the left
//     and right. Consequently the logical X operator is a vertical string
//     (top↔bottom) and the logical Z operator a horizontal string
//     (left↔right).
package lattice

import (
	"fmt"
	"sort"
)

// Coord is a position on the 2-D lattice. Row grows downward, Col rightward.
type Coord struct {
	Row, Col int
}

// String renders the coordinate as "(r,c)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Add returns c translated by d.
func (c Coord) Add(d Coord) Coord { return Coord{c.Row + d.Row, c.Col + d.Col} }

// Less orders coordinates row-major; it is the canonical sort order used for
// operator supports.
func (c Coord) Less(d Coord) bool {
	if c.Row != d.Row {
		return c.Row < d.Row
	}
	return c.Col < d.Col
}

// DiagNeighbors returns the four diagonal neighbours of c, the adjacency
// between check centres and data qubits in the rotated layout.
func (c Coord) DiagNeighbors() [4]Coord {
	return [4]Coord{
		{c.Row - 1, c.Col - 1},
		{c.Row - 1, c.Col + 1},
		{c.Row + 1, c.Col - 1},
		{c.Row + 1, c.Col + 1},
	}
}

// OrthoNeighbors returns the four orthogonal neighbours at distance 2 — the
// adjacency between same-role qubits (data↔data or check↔check).
func (c Coord) OrthoNeighbors() [4]Coord {
	return [4]Coord{
		{c.Row - 2, c.Col},
		{c.Row + 2, c.Col},
		{c.Row, c.Col - 2},
		{c.Row, c.Col + 2},
	}
}

// IsData reports whether c is a data-qubit position (odd row, odd col).
func (c Coord) IsData() bool { return abs(c.Row)%2 == 1 && abs(c.Col)%2 == 1 }

// IsCheck reports whether c is a check-qubit position (even row, even col).
func (c Coord) IsCheck() bool { return c.Row%2 == 0 && c.Col%2 == 0 }

// Chebyshev returns the Chebyshev (L∞) distance between a and b, the natural
// metric for defect regions ("the adjacent 24 qubits" = Chebyshev ball of
// radius 2).
func Chebyshev(a, b Coord) int {
	dr, dc := abs(a.Row-b.Row), abs(a.Col-b.Col)
	if dr > dc {
		return dr
	}
	return dc
}

// Manhattan returns |Δrow| + |Δcol|.
func Manhattan(a, b Coord) int { return abs(a.Row-b.Row) + abs(a.Col-b.Col) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SortCoords sorts a coordinate slice in row-major order.
func SortCoords(cs []Coord) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}

// CheckType distinguishes the two stabilizer flavours.
type CheckType uint8

const (
	// XCheck detects Z errors (a product of Pauli X on its support).
	XCheck CheckType = iota
	// ZCheck detects X errors (a product of Pauli Z on its support).
	ZCheck
)

// String implements fmt.Stringer.
func (t CheckType) String() string {
	if t == XCheck {
		return "X"
	}
	return "Z"
}

// Opposite returns the other check type.
func (t CheckType) Opposite() CheckType {
	if t == XCheck {
		return ZCheck
	}
	return XCheck
}

// Side labels the four boundaries of a patch.
type Side uint8

const (
	Top Side = iota
	Bottom
	Left
	Right
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Top:
		return "top"
	case Bottom:
		return "bottom"
	case Left:
		return "left"
	case Right:
		return "right"
	}
	return "invalid"
}

// Check describes one plaquette of a patch: its centre (the syndrome qubit
// position) and the data qubits it acts on.
type Check struct {
	Center  Coord
	Type    CheckType
	Support []Coord // sorted row-major
}

// Patch is the geometry of a freshly constructed rectangular rotated surface
// code: dX columns × dZ rows of data qubits. (Square patches have dX == dZ
// == d.) The patch is anchored so its top-left data qubit is at
// Origin.Add({1,1}).
type Patch struct {
	Origin Coord // top-left corner of the bounding box (even coords)
	DX     int   // data-qubit columns: length of the horizontal (Z) logical
	DZ     int   // data-qubit rows: length of the vertical (X) logical

	Data   []Coord // sorted
	Checks []Check

	// LogicalX is a vertical column of X's connecting top to bottom.
	// LogicalZ is a horizontal row of Z's connecting left to right.
	LogicalX []Coord
	LogicalZ []Coord
}

// NewPatch constructs a distance-d square rotated surface code anchored at
// origin (which must have even row and column).
func NewPatch(origin Coord, d int) *Patch {
	return NewRectPatch(origin, d, d)
}

// NewRectPatch constructs a rectangular rotated surface code with dx data
// columns and dz data rows. The X distance is dz (vertical), the Z distance
// dx (horizontal).
func NewRectPatch(origin Coord, dx, dz int) *Patch {
	if dx < 1 || dz < 1 {
		panic(fmt.Sprintf("lattice: invalid patch dimensions %dx%d", dx, dz))
	}
	if origin.Row%2 != 0 || origin.Col%2 != 0 {
		panic(fmt.Sprintf("lattice: patch origin %v must be even-even", origin))
	}
	p := &Patch{Origin: origin, DX: dx, DZ: dz}
	inPatch := make(map[Coord]bool, dx*dz)
	for i := 0; i < dz; i++ {
		for j := 0; j < dx; j++ {
			c := Coord{origin.Row + 2*i + 1, origin.Col + 2*j + 1}
			p.Data = append(p.Data, c)
			inPatch[c] = true
		}
	}
	for i := 0; i <= dz; i++ {
		for j := 0; j <= dx; j++ {
			center := Coord{origin.Row + 2*i, origin.Col + 2*j}
			var supp []Coord
			for _, n := range center.DiagNeighbors() {
				if inPatch[n] {
					supp = append(supp, n)
				}
			}
			if len(supp) < 2 {
				continue // corners and empty positions carry no check
			}
			typ := plaquetteType(i, j)
			if len(supp) == 2 {
				// Boundary half-plaquettes: X on top/bottom, Z on left/right.
				onTopBottom := i == 0 || i == dz
				onLeftRight := j == 0 || j == dx
				if onTopBottom && typ != XCheck {
					continue
				}
				if onLeftRight && typ != ZCheck {
					continue
				}
				if onTopBottom && onLeftRight {
					continue // degenerate 1xN corners handled above by len check
				}
			}
			SortCoords(supp)
			p.Checks = append(p.Checks, Check{Center: center, Type: typ, Support: supp})
		}
	}
	// Logical X: leftmost column of data qubits, top to bottom.
	for i := 0; i < dz; i++ {
		p.LogicalX = append(p.LogicalX, Coord{origin.Row + 2*i + 1, origin.Col + 1})
	}
	// Logical Z: top row of data qubits, left to right.
	for j := 0; j < dx; j++ {
		p.LogicalZ = append(p.LogicalZ, Coord{origin.Row + 1, origin.Col + 2*j + 1})
	}
	return p
}

// plaquetteType fixes the checkerboard colouring. With this choice the
// half-plaquettes at i==0 (top) rows alternate and the X-coloured ones are
// kept, matching the package convention.
func plaquetteType(i, j int) CheckType {
	if (i+j)%2 == 0 {
		return ZCheck
	}
	return XCheck
}

// Bounds returns the inclusive coordinate bounding box of the patch.
func (p *Patch) Bounds() (min, max Coord) {
	min = p.Origin
	max = Coord{p.Origin.Row + 2*p.DZ, p.Origin.Col + 2*p.DX}
	return min, max
}

// SideOf classifies which boundary of the patch the coordinate is nearest
// to, used when deciding how a boundary defect should be cut out. Interior
// coordinates return ok=false.
func (p *Patch) SideOf(c Coord) (Side, bool) {
	min, max := p.Bounds()
	dTop := c.Row - min.Row
	dBottom := max.Row - c.Row
	dLeft := c.Col - min.Col
	dRight := max.Col - c.Col
	best, side := dTop, Top
	if dBottom < best {
		best, side = dBottom, Bottom
	}
	if dLeft < best {
		best, side = dLeft, Left
	}
	if dRight < best {
		best, side = dRight, Right
	}
	if best > 2 {
		return side, false
	}
	return side, true
}

// CheckAt returns the check whose centre is c, if any.
func (p *Patch) CheckAt(c Coord) (Check, bool) {
	for _, ch := range p.Checks {
		if ch.Center == c {
			return ch, true
		}
	}
	return Check{}, false
}

// NumQubits returns the total physical qubit count of the patch: data qubits
// plus one syndrome qubit per check.
func (p *Patch) NumQubits() int { return len(p.Data) + len(p.Checks) }
