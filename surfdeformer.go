// Package surfdeformer is a from-scratch Go implementation of Surf-Deformer
// (Yin et al., MICRO 2024): a code deformation framework that mitigates
// dynamic defects on surface codes through adaptive deformation.
//
// The public API covers the full workflow of the paper's fig. 5:
//
//   - Patch wraps one (possibly deformed) surface-code logical qubit and
//     exposes the four deformation instructions (DataQ_RM, SyndromeQ_RM,
//     PatchQ_RM, PatchQ_ADD), the defect-removal subroutine (Algorithm 1)
//     and adaptive enlargement (Algorithm 2).
//   - MemoryExperiment measures logical error rates of any patch under the
//     circuit-level noise model with a union-find decoder, including
//     untreated 50%-error defect regions.
//   - Planner chooses the code distance and extra inter-space Δd for a
//     program (the compile-time layout generator, Eq. 1), and Unit drives
//     runtime deformation round by round.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every table and figure of the paper.
package surfdeformer

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/core"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/program"
	"surfdeformer/internal/sim"
)

// Coord is a position on the 2-D qubit lattice: data qubits live at
// odd×odd coordinates, syndrome qubits at even×even plaquette centres.
type Coord = lattice.Coord

// Side labels patch boundaries for enlargement.
type Side = lattice.Side

// Boundary sides.
const (
	Top    = lattice.Top
	Bottom = lattice.Bottom
	Left   = lattice.Left
	Right  = lattice.Right
)

// Policy selects the defect-mitigation strategy.
type Policy = deform.Policy

// Mitigation policies: the paper's Algorithm 1 (PolicySurfDeformer), the
// ASC-S baseline, and the no-balancing ablation.
const (
	PolicySurfDeformer = deform.PolicySurfDeformer
	PolicyASC          = deform.PolicyASC
	PolicyNoBalance    = deform.PolicyNoBalance
)

// Patch is one surface-code logical qubit under deformation.
type Patch struct {
	spec *deform.Spec
	code *code.Code
}

// NewPatch creates an undeformed distance-d square patch anchored at the
// origin.
func NewPatch(d int) (*Patch, error) {
	return NewRectPatch(d, d)
}

// NewRectPatch creates a dx×dz rectangular patch: Z distance dx, X
// distance dz.
func NewRectPatch(dx, dz int) (*Patch, error) {
	if dx < 2 || dz < 2 {
		return nil, fmt.Errorf("surfdeformer: patch dimensions %dx%d too small", dx, dz)
	}
	spec := deform.NewSpec(lattice.Coord{Row: 0, Col: 0}, dx, dz)
	c, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return &Patch{spec: spec, code: c}, nil
}

// RemoveDefects excludes the given defective physical qubits from the code
// using the policy's instruction selection (the paper's Algorithm 1) and
// rebuilds the deformed code.
func (p *Patch) RemoveDefects(defects []Coord, policy Policy) error {
	if err := deform.ApplyDefects(p.spec, defects, policy); err != nil {
		return err
	}
	c, err := p.spec.Build()
	if err != nil {
		return err
	}
	p.code = c
	return nil
}

// Enlarge grows the patch by the given number of layers on one side
// (PatchQ_ADD) and rebuilds.
func (p *Patch) Enlarge(side Side, layers int) error {
	if err := p.spec.PatchQADD(side, layers); err != nil {
		return err
	}
	c, err := p.spec.Build()
	if err != nil {
		return err
	}
	p.code = c
	return nil
}

// RestoreDistance adaptively enlarges the patch until its X and Z distances
// reach the targets, spending at most budget layers per side (the paper's
// Algorithm 2).
func (p *Patch) RestoreDistance(targetX, targetZ, budget int, policy Policy) error {
	res, err := deform.Enlarge(p.spec, targetX, targetZ, nil, policy, deform.UniformBudget(budget))
	if err != nil {
		return err
	}
	p.code = res.Code
	return nil
}

// DistanceX returns the dressed logical-X distance.
func (p *Patch) DistanceX() int { return p.code.DistanceX() }

// DistanceZ returns the dressed logical-Z distance.
func (p *Patch) DistanceZ() int { return p.code.DistanceZ() }

// Distance returns min(DistanceX, DistanceZ).
func (p *Patch) Distance() int { return p.code.Distance() }

// NumDataQubits returns the active data qubit count.
func (p *Patch) NumDataQubits() int { return p.code.NumData() }

// NumQubits returns the total active physical qubits (data + syndrome).
func (p *Patch) NumQubits() int { return p.code.NumQubits() }

// Params returns the subsystem-code parameters [[n, k, l]].
func (p *Patch) Params() (n, k, l int, err error) { return p.code.Params() }

// Validate checks every structural invariant of the deformed code.
func (p *Patch) Validate() error { return p.code.Validate() }

// Stabilizers returns the number of stabilizer generators (including
// super-stabilizers) and gauge operators currently measured.
func (p *Patch) Stabilizers() (stabs, gauges int) {
	return len(p.code.Stabs()), len(p.code.Gauges())
}

// MemoryOptions configures a logical memory experiment.
type MemoryOptions struct {
	// PhysicalErrorRate is the baseline circuit-level rate (default 1e-3).
	PhysicalErrorRate float64
	// Rounds of syndrome extraction (default 8).
	Rounds int
	// Shots of Monte Carlo (default 10000). When TargetRSE is 0 this is
	// the exact per-basis budget.
	Shots int
	// Seed for reproducibility.
	Seed int64
	// Workers sizes the Monte-Carlo engine's pool (0 = all CPUs). The
	// result is bit-identical for any value; it only changes wall-clock
	// time.
	Workers int
	// TargetRSE, when positive, stops each basis early once the failure
	// rate is known to this relative standard error (e.g. 0.1), up to
	// MaxShots.
	TargetRSE float64
	// MaxShots caps the adaptive budget when TargetRSE is set (default
	// Shots).
	MaxShots int
	// Defective marks hot qubits erroring at DefectRate; if DecoderAware
	// is false the decoder keeps nominal priors (an untreated dynamic
	// defect).
	Defective    []Coord
	DefectRate   float64
	DecoderAware bool
	// CorrelatedRate adds the fig. 14a correlated two-qubit channel.
	CorrelatedRate float64
}

// MemoryResult reports a memory experiment.
type MemoryResult struct {
	Shots            int // shots actually spent across both bases
	Failures         int
	LogicalErrorRate float64 // per shot
	PerRound         float64 // per QEC cycle
	// CILow and CIHigh bound LogicalErrorRate by combining the per-basis
	// 95% Wilson intervals; both bases must cover simultaneously, so the
	// joint coverage of the combined interval is ≈ 90%.
	CILow, CIHigh float64
	// EarlyStopped reports that at least one basis hit its TargetRSE
	// before exhausting the shot budget.
	EarlyStopped bool
}

// MemoryExperiment measures the logical error rate of the patch in both
// bases and returns the combined per-round rate.
func (p *Patch) MemoryExperiment(o MemoryOptions) (*MemoryResult, error) {
	if o.PhysicalErrorRate == 0 {
		o.PhysicalErrorRate = noise.DefaultPhysical
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	if o.Shots == 0 {
		o.Shots = 10000
	}
	if o.DefectRate == 0 {
		o.DefectRate = noise.DefaultDefectRate
	}
	nominal := noise.Uniform(o.PhysicalErrorRate).WithCorrelated(o.CorrelatedRate)
	model := nominal
	if len(o.Defective) > 0 {
		model = nominal.WithDefects(o.Defective, o.DefectRate)
	}
	shots := o.Shots
	if o.TargetRSE > 0 && o.MaxShots > 0 {
		shots = o.MaxShots
	}
	runOpts := sim.RunOptions{
		Rounds:    o.Rounds,
		Factory:   decoder.UnionFindFactory(),
		Shots:     shots,
		Workers:   o.Workers,
		TargetRSE: o.TargetRSE,
	}
	// Untreated defects decode with nominal priors; otherwise decode with
	// the sampling model itself (nil decode model = matched).
	var decodeModel *noise.Model
	if len(o.Defective) > 0 && !o.DecoderAware {
		decodeModel = nominal
	}
	var zRes, xRes *sim.MemoryResult
	var err error
	runOpts.Basis = lattice.ZCheck
	runOpts.Seed = o.Seed
	zRes, err = sim.RunMemoryOpts(p.code, model, decodeModel, runOpts)
	if err != nil {
		return nil, err
	}
	runOpts.Basis = lattice.XCheck
	runOpts.Seed = o.Seed + 1
	xRes, err = sim.RunMemoryOpts(p.code, model, decodeModel, runOpts)
	if err != nil {
		return nil, err
	}
	combinedShot := 1 - (1-zRes.LogicalErrorRate)*(1-xRes.LogicalErrorRate)
	return &MemoryResult{
		Shots:            zRes.Shots + xRes.Shots,
		Failures:         zRes.Failures + xRes.Failures,
		LogicalErrorRate: combinedShot,
		PerRound:         1 - (1-zRes.PerRound)*(1-xRes.PerRound),
		CILow:            1 - (1-zRes.CILow)*(1-xRes.CILow),
		CIHigh:           1 - (1-zRes.CIHigh)*(1-xRes.CIHigh),
		EarlyStopped:     zRes.EarlyStopped || xRes.EarlyStopped,
	}, nil
}

// Program re-exports the benchmark program model.
type Program = program.Program

// Benchmark program constructors (§VII-A).
var (
	Simon  = program.Simon
	RCA    = program.RCA
	QFT    = program.QFT
	Grover = program.Grover
)

// Plan is a compile-time layout plan: the chosen code distance, the Δd
// growth reserve (Eq. 1), and the retry-risk estimate.
type Plan struct {
	D              int
	DeltaD         int
	PhysicalQubits int
	RetryRisk      float64
	inner          *core.Plan
}

// PlanProgram runs the compile-time layout generator for a program at the
// given retry-risk target (e.g. 0.001 for 0.1%).
func PlanProgram(prog *Program, targetRetry float64) (*Plan, error) {
	fw := core.NewFramework()
	fw.TargetRetry = targetRetry
	inner, err := fw.Compile(prog)
	if err != nil {
		return nil, err
	}
	return &Plan{
		D:              inner.D,
		DeltaD:         inner.DeltaD,
		PhysicalQubits: inner.Layout.PhysicalQubits(),
		RetryRisk:      inner.Estimate.RetryRisk,
		inner:          inner,
	}, nil
}

// Unit is the runtime code deformation unit of one patch. Besides Step
// (defect report → deformed code) it supports Recover (defects subsided →
// re-incorporate qubits and shrink superfluous growth).
type Unit = deform.Unit

// NewUnit creates a runtime deformation unit for patch index i of the plan.
func (p *Plan) NewUnit(i int) *Unit { return p.inner.NewUnit(i) }

// System manages the deformation units of every patch in a plan and tracks
// which patches block their communication channels.
type System = core.System

// NewSystem instantiates the full runtime of the plan: one deformation unit
// per logical patch plus channel-blocking bookkeeping for the router.
func (p *Plan) NewSystem() *System { return p.inner.NewSystem() }

// NewStandaloneUnit creates a deformation unit for a d×d patch with a Δd
// growth budget, independent of any program plan.
func NewStandaloneUnit(d, deltaD int) *Unit {
	return core.UnitAt(lattice.Coord{Row: 0, Col: 0}, d, deltaD)
}

// Reincorporate returns recovered physical qubits to the patch (the defect
// subsided) and rebuilds the code.
func (p *Patch) Reincorporate(defects []Coord) error {
	p.spec.Reincorporate(defects)
	c, err := p.spec.Build()
	if err != nil {
		return err
	}
	p.code = c
	return nil
}
