// Command surfdeform regenerates the tables and figures of the Surf-Deformer
// paper's evaluation (§VII).
//
// Usage:
//
//	surfdeform [flags] <experiment>
//
// Experiments: table1, table2, fig11a, fig11b, fig11c, fig12, fig13a,
// fig13b, fig14a, fig14b, sweep, traj, pipeline, calibrate, all.
//
// Flags tune the Monte-Carlo budget; -quick shrinks every sweep to smoke-
// test scale. Grid experiments run their points concurrently with
// -point-workers and persist/resume per-point results with -store and
// -resume (results are bit-identical for any worker count and any resume
// order; see DESIGN.md §7). -store-ls and -store-gc inspect and compact a
// store without running anything.
//
// Observability (DESIGN.md §10): -progress streams grid completion to
// stderr, -stats prints the full obs metrics snapshot after the run,
// -debug-addr serves live pprof/expvar, and for traj, -trace-out writes
// one JSONL event per epoch transition of every computed trajectory
// (-trace-check validates such a file against the schema and exits). None
// of these change results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"surfdeformer/internal/cliutil"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/experiments"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/report"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/traj"
)

// main is a thin exit-code shim: all work happens in realMain so that its
// deferred cleanups — CPU-profile flush, heap-profile write, trace-file
// close, store sync+close — execute on every path, including errors and
// interrupts (os.Exit would skip them). Usage errors exit 2 before any
// cleanup is registered; run errors map to the documented codes
// (interrupted/partial → 3, see DESIGN.md §11).
func main() {
	os.Exit(cliutil.ReportRunError("surfdeform", os.Stderr, realMain()))
}

func realMain() (err error) {
	opt := experiments.Defaults()
	var lay trajLayoutFlags
	flag.IntVar(&opt.Shots, "shots", opt.Shots, "Monte-Carlo shots per memory experiment")
	flag.IntVar(&opt.Trials, "trials", opt.Trials, "defect-timeline trials")
	flag.IntVar(&opt.Rounds, "rounds", opt.Rounds, "QEC rounds per memory experiment")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "RNG seed")
	flag.BoolVar(&opt.Quick, "quick", false, "shrink sweeps to smoke-test scale")
	formatArg := flag.String("format", "text", "output format: text, csv, json")
	flag.BoolVar(&opt.FitLosses, "fitlosses", false, "fit per-event distance losses from the deformation engine instead of defaults")
	flag.IntVar(&opt.PointWorkers, "point-workers", 1, "grid points run concurrently (never changes results)")
	storePath := flag.String("store", "", "persist per-point results to this JSONL store")
	flag.BoolVar(&opt.Resume, "resume", false, "serve points already complete in -store instead of recomputing")
	storeSync := cliutil.AddStoreSyncFlag()
	storeLS := flag.Bool("store-ls", false, "list the contents of -store and exit")
	storeGC := flag.Bool("store-gc", false, "compact -store (merge segments, drop corrupt lines) and exit")
	targetRSE := flag.Float64("target-rse", 0, "adaptive early stopping for sweep/calibrate points (0 = fixed budget)")
	reweightFactor := flag.Float64("reweight-factor", 0, "traj: rate-multiplier gate of the decoder-prior reweight tier (0 = default)")
	var tier trajTierFlags
	flag.Float64Var(&tier.deviceRate, "device-defect-rate", 0, "traj: fabrication defect probability per data qubit and coupler (0 = pristine device; one device sampled per trajectory seed, identical across arms)")
	flag.Float64Var(&tier.superThreshold, "super-threshold", 0, "traj: severity boundary between the reweight and bandage (super-stabilizer) tiers (0 = default)")
	flag.Float64Var(&tier.halflife, "halflife", 0, "traj: exponential half-life, in cycles, of the detector's rate estimator (0 = unweighted window)")
	flag.IntVar(&lay.patches, "patches", 1, "traj: logical patches in the layout (1 = single-patch closed loop; >1 adds routing channels and a lattice-surgery schedule)")
	flag.StringVar(&lay.program, "program", "", "traj: benchmark whose CNOTs the layout schedules as lattice surgery (simon, rca, qft, grover; needs -patches >= 2)")
	flag.IntVar(&lay.ops, "ops", 0, "traj: explicit surgery-schedule length (0 = a layout-sized excerpt of -program)")
	flag.BoolVar(&opt.AdaptiveStop, "adaptive-stop", false, "traj: retire an arm once its failure CI separates from every other arm's (deterministic; store-compatible with fixed runs)")
	flag.IntVar(&opt.MinTrials, "min-trials", 0, "traj: per-arm trajectory floor before -adaptive-stop may retire an arm (0 = default)")
	cacheStats := flag.Bool("stats", false, "report the full obs metrics snapshot (DEM cache, decoder, store, traj counters) on stderr after the run")
	progress := flag.Bool("progress", false, "report grid progress (points done, throughput, ETA) on stderr while running")
	traceOut := flag.String("trace-out", "", "traj: write one JSONL trace event per epoch transition to this file")
	traceCheck := flag.String("trace-check", "", "validate a -trace-out file against the trace schema and exit")
	prof := cliutil.AddProfileFlags()
	flag.Parse()
	format, err := report.ParseFormat(*formatArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "surfdeform: %v\n", err)
		os.Exit(2)
	}
	if *traceCheck != "" {
		f, terr := os.Open(*traceCheck)
		if terr != nil {
			return terr
		}
		defer f.Close()
		n, terr := obs.ValidateTrace(f)
		if terr != nil {
			return fmt.Errorf("trace %s: %w", *traceCheck, terr)
		}
		fmt.Printf("surfdeform: trace %s OK (%d events)\n", *traceCheck, n)
		return nil
	}
	if opt.Quick {
		q := experiments.QuickOptions()
		q.Seed = opt.Seed
		q.FitLosses = opt.FitLosses
		q.PointWorkers = opt.PointWorkers
		q.Resume = opt.Resume
		q.AdaptiveStop = opt.AdaptiveStop
		q.MinTrials = opt.MinTrials
		// Explicitly-set budget flags survive the quick preset, so smoke
		// runs can still size themselves (e.g. -quick -trials 2 traj).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shots":
				q.Shots = opt.Shots
			case "trials":
				q.Trials = opt.Trials
			case "rounds":
				q.Rounds = opt.Rounds
			}
		})
		opt = q
	}
	if *storePath != "" {
		st, serr := cliutil.OpenStore("surfdeform", *storePath, *storeSync)
		if serr != nil {
			return serr
		}
		defer st.Close()
		opt.Store = st
	}
	if *storeLS || *storeGC {
		if err := cliutil.StoreMaintenance("surfdeform", opt.Store, os.Stdout, *storeLS, *storeGC); err != nil {
			fmt.Fprintf(os.Stderr, "surfdeform: %v\n", err)
			os.Exit(2)
		}
		return nil
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	// SIGINT/SIGTERM cancel the context: grids stop dispatching at the
	// next point boundary, in-flight points drain, and the deferred store
	// Close syncs every committed point before the process exits 3.
	ctx, stopSignals := cliutil.SignalContext("surfdeform", os.Stderr)
	defer stopSignals()
	opt.Ctx = ctx

	stop, err := prof.Start("surfdeform")
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); serr != nil && err == nil {
			err = serr
		}
	}()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tf, terr := os.Create(*traceOut)
		if terr != nil {
			return terr
		}
		defer tf.Close()
		tracer = obs.NewTracer(tf)
		defer func() {
			if terr := tracer.Err(); terr != nil && err == nil {
				err = fmt.Errorf("trace %s: %w", *traceOut, terr)
			}
		}()
	}
	// Trajectory grids advance in simulated cycles; everything else is
	// paced by committed Monte-Carlo shots.
	unitsLabel, unitsCounter := "shots", "mc.shots_committed"
	if name == "traj" {
		unitsLabel, unitsCounter = "cycles", "traj.cycles"
	}
	opt.Progress = cliutil.NewProgress(*progress, unitsLabel, unitsCounter)

	opt.Stats = &experiments.RunStats{}
	start := time.Now()
	runErr := run(name, opt, format, *targetRSE, *reweightFactor, lay, tier, tracer)
	if runErr != nil && cliutil.ExitCode(runErr) != cliutil.ExitPartial {
		return runErr
	}
	if opt.Store != nil {
		fmt.Fprintf(os.Stderr, "[%s computed %d point(s), skipped %d (store %s)]\n",
			name, opt.Stats.Computed(), opt.Stats.Skipped(), *storePath)
	}
	cliutil.WarnDegraded("surfdeform", os.Stderr)
	if *cacheStats {
		// The counters are monotone across the cache's wholesale clears
		// (clears are themselves counted), so this snapshot reflects the
		// whole run even when a long trajectory churned the working set.
		cs := sim.SharedDEMCache().Stats()
		fmt.Fprintf(os.Stderr, "[dem cache: %d hits, %d misses, %d clears, %d entries]\n",
			cs.Hits, cs.Misses, cs.Clears, cs.Entries)
		cliutil.PrintSnapshot(os.Stderr)
	}
	if runErr != nil {
		// Interrupted or partially failed: everything completed so far is
		// committed (and synced by the deferred Close); tell the user how
		// to compute only what is missing.
		cliutil.ResumeHint("surfdeform", os.Stderr, *storePath, opt.Resume)
		fmt.Fprintf(os.Stderr, "[%s stopped after %v]\n", name, time.Since(start).Round(time.Millisecond))
		return runErr
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

// trajLayoutFlags carries the layout axis of the traj experiment from the
// flag set into run: with -patches >= 2 the trajectory simulates the whole
// floorplan — N patches, the routing channels between them, and a
// lattice-surgery schedule replanned around defects.
type trajLayoutFlags struct {
	patches int
	program string
	ops     int
}

// trajTierFlags carries the three-tier-ladder axis of the traj experiment:
// a fabrication-defect device model sampled per trajectory, the severity
// boundary of the bandage tier, and the detector estimator's half-life.
type trajTierFlags struct {
	deviceRate     float64
	superThreshold float64
	halflife       float64
}

func run(name string, opt experiments.Options, format report.Format, targetRSE, reweightFactor float64, lay trajLayoutFlags, tier trajTierFlags, tracer *obs.Tracer) error {
	w := os.Stdout
	structured := func(t *report.Table) error { return t.Write(w, format) }
	textOnly := format == report.Text
	switch name {
	case "table1":
		experiments.Table1(w)
	case "table2":
		rows, err := experiments.Table2(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderTable2(w, rows)
		} else if err := structured(experiments.Table2Table(rows)); err != nil {
			return err
		}
	case "fig11a":
		rows, err := experiments.Fig11a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11a(w, rows)
		} else if err := structured(experiments.Fig11aTable(rows)); err != nil {
			return err
		}
	case "fig11b":
		rows, err := experiments.Fig11b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11b(w, rows)
		} else if err := structured(experiments.Fig11bTable(rows)); err != nil {
			return err
		}
	case "fig11c":
		rows, err := experiments.Fig11c(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11c(w, rows)
		} else if err := structured(experiments.Fig11cTable(rows)); err != nil {
			return err
		}
	case "fig12":
		rows, err := experiments.Fig12(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig12(w, rows)
		} else if err := structured(experiments.Fig12Table(rows)); err != nil {
			return err
		}
	case "fig13a":
		rows, err := experiments.Fig13a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig13a(w, rows)
		} else if err := structured(experiments.Fig13aTable(rows)); err != nil {
			return err
		}
	case "fig13b":
		rows, err := experiments.Fig13b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig13b(w, rows)
		} else if err := structured(experiments.Fig13bTable(rows)); err != nil {
			return err
		}
	case "fig14a":
		rows, err := experiments.Fig14a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig14a(w, rows)
		} else if err := structured(experiments.Fig14aTable(rows)); err != nil {
			return err
		}
	case "fig14b":
		rows, err := experiments.Fig14b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig14b(w, rows)
		} else if err := structured(experiments.Fig14bTable(rows)); err != nil {
			return err
		}
	case "sweep":
		rows, err := experiments.MemorySweep(opt, experiments.DefaultSweepGrid(opt),
			experiments.SweepEngine{TargetRSE: targetRSE})
		if err != nil && rows == nil {
			return err
		}
		if err != nil {
			// Isolated point failures: render only the rows that completed
			// (a zero D marks a never-filled slot), then surface the error.
			kept := rows[:0:0]
			for _, r := range rows {
				if r.D != 0 {
					kept = append(kept, r)
				}
			}
			rows = kept
		}
		if textOnly {
			experiments.RenderSweep(w, rows)
		} else if rerr := structured(experiments.SweepTable(rows)); rerr != nil {
			return rerr
		}
		if err != nil {
			return err
		}
	case "traj":
		cfg := experiments.DefaultTrajConfig(opt)
		cfg.ReweightFactor = reweightFactor
		cfg.SuperThreshold = tier.superThreshold
		cfg.Halflife = tier.halflife
		if tier.deviceRate > 0 {
			cfg.Device = defect.NewDeviceModel(tier.deviceRate)
		}
		cfg.Trace = tracer
		if lay.patches > 1 || lay.program != "" || lay.ops > 0 {
			cfg.Layout = &traj.LayoutConfig{Patches: lay.patches, Program: lay.program, Ops: lay.ops}
		}
		rows, err := experiments.TrajectoryScan(opt, cfg, experiments.DefaultTrajModes())
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderTraj(w, cfg.Horizon, rows)
		} else if err := structured(experiments.TrajTable(rows)); err != nil {
			return err
		}
	case "pipeline":
		res, err := experiments.DetectionPipeline(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderPipeline(w, res)
		} else if err := structured(experiments.PipelineTable(res)); err != nil {
			return err
		}
	case "calibrate":
		model, pts, err := estimator.CalibrateOpts(
			[]float64{3e-3, 4e-3, 6e-3}, []int{3, 5, 7},
			estimator.CalibrateOptions{
				Rounds: opt.Rounds, Shots: opt.Shots, TargetRSE: targetRSE,
				PointWorkers: opt.PointWorkers, Ctx: opt.Ctx,
				Factory: decoder.UnionFindFactory(), Decoder: "uf",
				Seed: opt.Seed, Store: opt.Store, Resume: opt.Resume,
				Progress: opt.Progress,
				OnPoint: func(fromStore bool) {
					if fromStore {
						opt.Stats.AddSkipped()
					} else {
						opt.Stats.AddComputed()
					}
				},
			})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "fitted Λ-model: A = %.4g, p_th = %.4g (from %d points)\n",
			model.A, model.PThreshold, len(pts))
		for _, pt := range pts {
			fmt.Fprintf(w, "  p=%.0e d=%d: measured λ=%.3e, fit λ=%.3e\n",
				pt.P, pt.D, pt.Lambda, model.RateAt(pt.P, pt.D))
		}
	case "all":
		for _, n := range []string{"table1", "table2", "fig11a", "fig11b", "fig11c",
			"fig12", "fig13a", "fig13b", "fig14a", "fig14b"} {
			fmt.Fprintf(w, "\n=== %s ===\n", n)
			if err := run(n, opt, format, targetRSE, reweightFactor, lay, tier, tracer); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
	default:
		usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: surfdeform [flags] <experiment>

experiments:
  table1    instruction sets of LS / Q3DE / ASC-S / Surf-Deformer
  table2    end-to-end retry risk and qubit counts over 8 benchmarks
  fig11a    logical error rate vs #defects: untreated vs removed
  fig11b    remaining code distance: ASC-S vs Surf-Deformer
  fig11c    communication throughput vs defect rate
  fig12     physical qubits to reach 1% retry risk
  fig13a    retry-risk vs qubit-count trade-off curves
  fig13b    chiplet yield under static faults
  fig14a    robustness to correlated two-qubit errors
  fig14b    robustness to imprecise defect detection
  sweep     (d, #defects, policy) post-removal error-rate grid
  traj      closed-loop trajectories: detect → bandage/deform/reweight →
            recover over thousands of cycles with stochastic defect
            arrivals; five arms (surf-deformer, asc-s, super-only,
            reweight-only, untreated) face identical timelines (-trials
            per arm; -reweight-factor tunes the decoder-prior tier,
            -super-threshold the bandage tier's severity boundary,
            -halflife the rate estimator's temporal weighting; supports
            -store/-resume/-stats). -device-defect-rate p boots every
            trajectory on a fabrication-defective device sampled per seed
            and adapted through each arm's mitigation ladder. -patches N
            lifts the loop to an N-patch layout with routing channels and
            a lattice-surgery schedule (-program, -ops) that replans or
            stalls around channel-blocking defects
  pipeline  integrated detection→deformation loop (extension study)
  calibrate refit the Λ extrapolation model from simulations
  all       everything above`)
	flag.PrintDefaults()
}
