// Command surfdeform regenerates the tables and figures of the Surf-Deformer
// paper's evaluation (§VII).
//
// Usage:
//
//	surfdeform [flags] <experiment>
//
// Experiments: table1, table2, fig11a, fig11b, fig11c, fig12, fig13a,
// fig13b, fig14a, fig14b, calibrate, all.
//
// Flags tune the Monte-Carlo budget; -quick shrinks every sweep to smoke-
// test scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/experiments"
	"surfdeformer/internal/report"
)

func main() {
	opt := experiments.Defaults()
	flag.IntVar(&opt.Shots, "shots", opt.Shots, "Monte-Carlo shots per memory experiment")
	flag.IntVar(&opt.Trials, "trials", opt.Trials, "defect-timeline trials")
	flag.IntVar(&opt.Rounds, "rounds", opt.Rounds, "QEC rounds per memory experiment")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "RNG seed")
	flag.BoolVar(&opt.Quick, "quick", false, "shrink sweeps to smoke-test scale")
	formatArg := flag.String("format", "text", "output format: text, csv, json")
	flag.BoolVar(&opt.FitLosses, "fitlosses", false, "fit per-event distance losses from the deformation engine instead of defaults")
	flag.Parse()
	format, err := report.ParseFormat(*formatArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "surfdeform: %v\n", err)
		os.Exit(2)
	}
	if opt.Quick {
		q := experiments.QuickOptions()
		q.Seed = opt.Seed
		q.FitLosses = opt.FitLosses
		opt = q
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	start := time.Now()
	if err := run(name, opt, format); err != nil {
		fmt.Fprintf(os.Stderr, "surfdeform: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
}

func run(name string, opt experiments.Options, format report.Format) error {
	w := os.Stdout
	structured := func(t *report.Table) error { return t.Write(w, format) }
	textOnly := format == report.Text
	switch name {
	case "table1":
		experiments.Table1(w)
	case "table2":
		rows, err := experiments.Table2(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderTable2(w, rows)
		} else if err := structured(experiments.Table2Table(rows)); err != nil {
			return err
		}
	case "fig11a":
		rows, err := experiments.Fig11a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11a(w, rows)
		} else if err := structured(experiments.Fig11aTable(rows)); err != nil {
			return err
		}
	case "fig11b":
		rows, err := experiments.Fig11b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11b(w, rows)
		} else if err := structured(experiments.Fig11bTable(rows)); err != nil {
			return err
		}
	case "fig11c":
		rows, err := experiments.Fig11c(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig11c(w, rows)
		} else if err := structured(experiments.Fig11cTable(rows)); err != nil {
			return err
		}
	case "fig12":
		rows, err := experiments.Fig12(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig12(w, rows)
		} else if err := structured(experiments.Fig12Table(rows)); err != nil {
			return err
		}
	case "fig13a":
		rows, err := experiments.Fig13a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig13a(w, rows)
		} else if err := structured(experiments.Fig13aTable(rows)); err != nil {
			return err
		}
	case "fig13b":
		rows, err := experiments.Fig13b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig13b(w, rows)
		} else if err := structured(experiments.Fig13bTable(rows)); err != nil {
			return err
		}
	case "fig14a":
		rows, err := experiments.Fig14a(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig14a(w, rows)
		} else if err := structured(experiments.Fig14aTable(rows)); err != nil {
			return err
		}
	case "fig14b":
		rows, err := experiments.Fig14b(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderFig14b(w, rows)
		} else if err := structured(experiments.Fig14bTable(rows)); err != nil {
			return err
		}
	case "pipeline":
		res, err := experiments.DetectionPipeline(opt)
		if err != nil {
			return err
		}
		if textOnly {
			experiments.RenderPipeline(w, res)
		} else if err := structured(experiments.PipelineTable(res)); err != nil {
			return err
		}
	case "calibrate":
		model, pts, err := estimator.Calibrate(
			[]float64{3e-3, 4e-3, 6e-3}, []int{3, 5, 7},
			opt.Rounds, opt.Shots, decoder.UnionFindFactory(), opt.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "fitted Λ-model: A = %.4g, p_th = %.4g (from %d points)\n",
			model.A, model.PThreshold, len(pts))
		for _, pt := range pts {
			fmt.Fprintf(w, "  p=%.0e d=%d: measured λ=%.3e, fit λ=%.3e\n",
				pt.P, pt.D, pt.Lambda, model.RateAt(pt.P, pt.D))
		}
	case "all":
		for _, n := range []string{"table1", "table2", "fig11a", "fig11b", "fig11c",
			"fig12", "fig13a", "fig13b", "fig14a", "fig14b"} {
			fmt.Fprintf(w, "\n=== %s ===\n", n)
			if err := run(n, opt, format); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
	default:
		usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: surfdeform [flags] <experiment>

experiments:
  table1    instruction sets of LS / Q3DE / ASC-S / Surf-Deformer
  table2    end-to-end retry risk and qubit counts over 8 benchmarks
  fig11a    logical error rate vs #defects: untreated vs removed
  fig11b    remaining code distance: ASC-S vs Surf-Deformer
  fig11c    communication throughput vs defect rate
  fig12     physical qubits to reach 1% retry risk
  fig13a    retry-risk vs qubit-count trade-off curves
  fig13b    chiplet yield under static faults
  fig14a    robustness to correlated two-qubit errors
  fig14b    robustness to imprecise defect detection
  pipeline  integrated detection→deformation loop (extension study)
  calibrate refit the Λ extrapolation model from simulations
  all       everything above`)
	flag.PrintDefaults()
}
