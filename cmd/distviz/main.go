// Command distviz renders a deformed surface-code patch as ASCII art:
// data qubits, syndrome qubits, removed sites, super-stabilizer regions and
// the logical operator paths. It is the debugging lens used while
// developing deformation strategies.
//
// Usage:
//
//	distviz -d 9 -defects "5,5;4,6;1,9" [-policy surf|asc|none] [-enlarge 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"surfdeformer/internal/code"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
)

func main() {
	d := flag.Int("d", 7, "code distance")
	defectsArg := flag.String("defects", "", "semicolon-separated row,col defect sites")
	policyArg := flag.String("policy", "surf", "mitigation policy: surf, asc, none")
	enlarge := flag.Int("enlarge", 0, "growth budget (layers per side) to restore distance")
	flag.Parse()

	var policy deform.Policy
	switch *policyArg {
	case "surf":
		policy = deform.PolicySurfDeformer
	case "asc":
		policy = deform.PolicyASC
	case "none":
		policy = deform.PolicyNoBalance
	default:
		fmt.Fprintf(os.Stderr, "distviz: unknown policy %q\n", *policyArg)
		os.Exit(2)
	}

	defects, err := parseCoords(*defectsArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distviz: %v\n", err)
		os.Exit(2)
	}

	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, *d)
	if err := deform.ApplyDefects(spec, defects, policy); err != nil {
		fmt.Fprintf(os.Stderr, "distviz: %v\n", err)
		os.Exit(1)
	}
	var c *code.Code
	if *enlarge > 0 {
		res, err := deform.Enlarge(spec, *d, *d, nil, policy, deform.UniformBudget(*enlarge))
		if err != nil {
			fmt.Fprintf(os.Stderr, "distviz: enlargement: %v\n", err)
			os.Exit(1)
		}
		c = res.Code
	} else {
		c, err = spec.Build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "distviz: %v\n", err)
			os.Exit(1)
		}
	}

	render(os.Stdout, spec, c, defects)
}

func parseCoords(s string) ([]lattice.Coord, error) {
	if s == "" {
		return nil, nil
	}
	var out []lattice.Coord
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad coordinate %q (want row,col)", part)
		}
		r, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		c, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, err
		}
		out = append(out, lattice.Coord{Row: r, Col: c})
	}
	return out, nil
}

func render(w *os.File, spec *deform.Spec, c *code.Code, defects []lattice.Coord) {
	min, max := spec.Bounds()
	isDefect := map[lattice.Coord]bool{}
	for _, q := range defects {
		isDefect[q] = true
	}
	inLX := map[lattice.Coord]bool{}
	for _, q := range c.LogicalX().Support() {
		inLX[q] = true
	}
	inLZ := map[lattice.Coord]bool{}
	for _, q := range c.LogicalZ().Support() {
		inLZ[q] = true
	}
	gaugeAncilla := map[lattice.Coord]bool{}
	for _, g := range c.Gauges() {
		gaugeAncilla[g.Ancilla] = true
	}

	fmt.Fprintf(w, "patch %dx%d  removed=%d  stabs=%d gauges=%d\n",
		spec.DX, spec.DZ, spec.NumRemoved(), len(c.Stabs()), len(c.Gauges()))
	fmt.Fprintf(w, "distances: X=%d Z=%d\n", c.DistanceX(), c.DistanceZ())
	fmt.Fprintln(w, "legend: o data, . syndrome, X removed, * defect site, x/z logical path, g gauge ancilla")
	for r := min.Row; r <= max.Row; r++ {
		var sb strings.Builder
		for col := min.Col; col <= max.Col; col++ {
			q := lattice.Coord{Row: r, Col: col}
			ch := ' '
			switch {
			case isDefect[q] && !c.HasData(q) && !c.HasSyndrome(q):
				ch = 'X'
			case isDefect[q]:
				ch = '*'
			case inLX[q] && inLZ[q]:
				ch = '+'
			case inLX[q]:
				ch = 'x'
			case inLZ[q]:
				ch = 'z'
			case c.HasData(q):
				ch = 'o'
			case gaugeAncilla[q]:
				ch = 'g'
			case c.HasSyndrome(q):
				ch = '.'
			case q.IsData() || q.IsCheck():
				ch = '×' // site exists on the lattice but is out of the code
			}
			sb.WriteRune(ch)
		}
		fmt.Fprintln(w, sb.String())
	}
}
