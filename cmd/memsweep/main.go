// Command memsweep sweeps memory-experiment logical error rates over code
// distance and physical error rate — the raw data behind threshold plots
// and the Λ-model calibration.
//
// Usage:
//
//	memsweep -d 3,5,7 -p 2e-3,4e-3,6e-3 -rounds 6 -shots 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

func main() {
	dArg := flag.String("d", "3,5,7", "comma-separated code distances")
	pArg := flag.String("p", "2e-3,4e-3,6e-3", "comma-separated physical error rates")
	rounds := flag.Int("rounds", 6, "QEC rounds")
	shots := flag.Int("shots", 20000, "shots per point")
	seed := flag.Int64("seed", 1, "RNG seed")
	dec := flag.String("decoder", "uf", "decoder: uf, greedy, exact")
	flag.Parse()

	ds, err := parseInts(*dArg)
	if err != nil {
		fatal(err)
	}
	ps, err := parseFloats(*pArg)
	if err != nil {
		fatal(err)
	}
	var factory sim.DecoderFactory
	switch *dec {
	case "uf":
		factory = decoder.UnionFindFactory()
	case "greedy":
		factory = decoder.GreedyFactory()
	case "exact":
		factory = decoder.ExactFactory(14)
	default:
		fatal(fmt.Errorf("unknown decoder %q", *dec))
	}

	fmt.Printf("%-8s %-10s %-14s %-14s %-14s %-10s\n", "d", "p", "λZ/cycle", "λX/cycle", "λ/cycle", "failures")
	for _, d := range ds {
		for _, p := range ps {
			c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
			z, x, combined, err := sim.RunMemoryBoth(c, noise.Uniform(p), *rounds, *shots, factory, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8d %-10.1e %-14.3e %-14.3e %-14.3e %d+%d/%d\n",
				d, p, z.PerRound, x.PerRound, combined, z.Failures, x.Failures, *shots)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "memsweep: %v\n", err)
	os.Exit(1)
}
