// Command memsweep sweeps memory-experiment logical error rates over code
// distance and physical error rate — the raw data behind threshold plots
// and the Λ-model calibration. The sweep is parallel at two levels and
// resumable: -point-workers runs whole (d, p) points concurrently while
// -workers shards shots inside each point (neither changes results — every
// stream derives from the seed and the point's content), -target-rse stops
// each point as soon as its failure rate is known to the requested
// precision, and -store/-resume persist completed points to a JSONL result
// store so an interrupted sweep re-invoked with -resume computes only the
// missing points and prints a table byte-identical to an uninterrupted
// run. See EXPERIMENTS.md ("Resuming an interrupted sweep") and
// DESIGN.md §7 for the store format and determinism contract.
//
// The sweep is crash-safe (DESIGN.md §11): SIGINT/SIGTERM drains in-flight
// points, syncs the store, prints a resume hint and exits 3; a worker
// panic or exhausted transient retry is isolated to its point (remaining
// points complete, the failure is reported, exit 3); -store-sync selects
// the fsync policy. Exit codes: 0 complete, 1 error, 2 usage, 3
// interrupted or partial.
//
// Usage:
//
//	memsweep -d 3,5,7 -p 2e-3,4e-3,6e-3 -rounds 6 -shots 20000
//	memsweep -d 3,5,7 -p 2e-3 -target-rse 0.1 -max-shots 2000000 -workers 8
//	memsweep -d 3,5,7,9 -p 2e-3,4e-3 -point-workers 4 -store sweep.jsonl -resume
//	memsweep -store sweep.jsonl -store-ls
//	memsweep -store sweep.jsonl -store-gc
package main

import (
	"flag"
	"fmt"
	"os"

	"surfdeformer/internal/cliutil"
	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/store"
)

// pointSalt keeps memsweep's per-point seed streams disjoint from engine
// shard streams and from the experiments package's stream kinds.
const pointSalt = int64(-20)

// main is a thin exit-code shim: all work happens in run so that its
// deferred cleanups — CPU-profile flush, heap-profile write, store
// sync+close — execute on every path, including errors and interrupts
// (os.Exit would skip them). Usage errors exit 2 via the flag package;
// run errors map to the documented codes (interrupted/partial → 3).
func main() {
	os.Exit(cliutil.ReportRunError("memsweep", os.Stderr, run()))
}

func run() (err error) {
	dArg := flag.String("d", "3,5,7", "comma-separated code distances")
	pArg := flag.String("p", "2e-3,4e-3,6e-3", "comma-separated physical error rates")
	rounds := flag.Int("rounds", 6, "QEC rounds")
	shots := flag.Int("shots", 20000, "shots per point (exact budget unless -target-rse is set)")
	seed := flag.Int64("seed", 1, "RNG seed")
	dec := flag.String("decoder", "uf", "decoder: uf, greedy, exact")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size within a point (0 = all CPUs; never changes results)")
	pointWorkers := flag.Int("point-workers", 1, "(d, p) points run concurrently (never changes results)")
	targetRSE := flag.Float64("target-rse", 0, "stop each point at this relative standard error (0 = fixed budget)")
	maxShots := flag.Int("max-shots", 0, "shot cap when -target-rse is set (0 = -shots)")
	storePath := flag.String("store", "", "persist per-point results to this JSONL store")
	resume := flag.Bool("resume", false, "serve points already complete in -store instead of recomputing")
	storeSync := cliutil.AddStoreSyncFlag()
	storeLS := flag.Bool("store-ls", false, "list the contents of -store and exit")
	storeGC := flag.Bool("store-gc", false, "compact -store (merge segments, drop corrupt lines) and exit")
	progress := flag.Bool("progress", false, "report sweep progress (points done, shots/sec, ETA) on stderr while running")
	prof := cliutil.AddProfileFlags()
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: the point pool stops dispatching,
	// in-flight points drain at shard boundaries, and the deferred store
	// Close syncs everything committed before the process exits.
	ctx, stopSignals := cliutil.SignalContext("memsweep", os.Stderr)
	defer stopSignals()

	stop, err := prof.Start("memsweep")
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	var st *store.Store
	if *storePath != "" {
		st, err = cliutil.OpenStore("memsweep", *storePath, *storeSync)
		if err != nil {
			return err
		}
		defer st.Close()
	}
	if *storeLS || *storeGC {
		return cliutil.StoreMaintenance("memsweep", st, os.Stdout, *storeLS, *storeGC)
	}

	ds, err := cliutil.ParseInts(*dArg)
	if err != nil {
		return err
	}
	ps, err := cliutil.ParseFloats(*pArg)
	if err != nil {
		return err
	}
	var factory sim.DecoderFactory
	switch *dec {
	case "uf":
		factory = decoder.UnionFindFactory()
	case "greedy":
		factory = decoder.GreedyFactory()
	case "exact":
		factory = decoder.ExactFactory(14)
	default:
		return fmt.Errorf("unknown decoder %q", *dec)
	}
	budget := *shots
	if *targetRSE > 0 && *maxShots > 0 {
		budget = *maxShots
	}

	type point struct {
		d int
		p float64
	}
	type result struct {
		z, x     *sim.MemoryResult
		combined float64
		stored   bool
	}
	var grid []point
	for _, d := range ds {
		for _, p := range ps {
			grid = append(grid, point{d, p})
		}
	}
	results := make([]result, len(grid))
	prog := cliutil.NewProgress(*progress, "shots", "mc.shots_committed")
	prog.Begin(len(grid))
	runErr := mc.ForEach(ctx, *pointWorkers, len(grid), func(i int) error {
		defer prog.PointDone()
		pt := grid[i]
		c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, pt.d))
		z, x, combined, stored, rerr := sim.RunMemoryBothStored(c, noise.Uniform(pt.p), sim.RunOptions{
			Rounds:    *rounds,
			Factory:   factory,
			Shots:     budget,
			Workers:   *workers,
			TargetRSE: *targetRSE,
			Seed:      mc.DeriveSeed(*seed, pointSalt, int64(pt.d), rateStream(pt.p)),
			Ctx:       ctx,
		}, sim.StoreOptions{
			Store:  st,
			Resume: *resume,
			Kind:   "memsweep",
			Config: memsweepConfig{D: pt.d, P: pt.p, Rounds: *rounds,
				Decoder: *dec, Seed: *seed, TargetRSE: *targetRSE},
		})
		if rerr != nil {
			return rerr
		}
		results[i] = result{z, x, combined, stored}
		return nil
	})
	prog.End()
	if runErr != nil && cliutil.ExitCode(runErr) != cliutil.ExitPartial {
		return runErr
	}

	// Completed points are rendered even after an interrupt or isolated
	// point failures — each row is independent and already committed.
	fmt.Printf("%-8s %-10s %-14s %-14s %-14s %-16s %-12s\n",
		"d", "p", "λZ/cycle", "λX/cycle", "λ/cycle", "failures", "shots")
	computed, skipped, missing := 0, 0, 0
	for i, pt := range grid {
		r := results[i]
		if r.z == nil {
			missing++
			continue
		}
		if r.stored {
			skipped++
		} else {
			computed++
		}
		stopped := ""
		if r.z.EarlyStopped || r.x.EarlyStopped {
			stopped = "*"
		}
		fmt.Printf("%-8d %-10.1e %-14.3e %-14.3e %-14.3e %-16s %d+%d%s\n",
			pt.d, pt.p, r.z.PerRound, r.x.PerRound, r.combined,
			fmt.Sprintf("%d+%d", r.z.Failures, r.x.Failures), r.z.Shots, r.x.Shots, stopped)
	}
	if *targetRSE > 0 {
		fmt.Println("\n(* = point stopped early at the target RSE)")
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "memsweep: computed %d point(s), skipped %d (store %s)\n",
			computed, skipped, *storePath)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "memsweep: partial results — %d of %d point(s) missing from the table\n",
			missing, len(grid))
		cliutil.ResumeHint("memsweep", os.Stderr, *storePath, *resume)
	}
	cliutil.WarnDegraded("memsweep", os.Stderr)
	return runErr
}

// memsweepConfig is the store identity of one (d, p) point. The shot
// budget is absent by design — it accumulates across sessions (DESIGN.md
// §7).
type memsweepConfig struct {
	D         int     `json:"d"`
	P         float64 `json:"p"`
	Rounds    int     `json:"rounds"`
	Decoder   string  `json:"decoder"`
	Seed      int64   `json:"seed"`
	TargetRSE float64 `json:"target_rse,omitempty"`
}

// rateStream maps a physical rate to a stream index (content-derived, so
// a point's streams do not depend on its grid position).
func rateStream(p float64) int64 {
	return int64(p * 1e12)
}
