// Command memsweep sweeps memory-experiment logical error rates over code
// distance and physical error rate — the raw data behind threshold plots
// and the Λ-model calibration. Points run on the concurrent Monte-Carlo
// engine: shots are sharded across a worker pool with deterministic
// per-shard RNG streams (results are bit-identical for any -workers
// value), and -target-rse stops each point as soon as its failure rate is
// known to the requested precision.
//
// Usage:
//
//	memsweep -d 3,5,7 -p 2e-3,4e-3,6e-3 -rounds 6 -shots 20000
//	memsweep -d 3,5,7 -p 2e-3 -target-rse 0.1 -max-shots 2000000 -workers 8
//	memsweep -d 5,7 -p 2e-3 -shots 50000 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"surfdeformer/internal/cliutil"
	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// main is a thin exit-code shim: all work happens in run so that its
// deferred cleanups — CPU-profile flush, heap-profile write — execute on
// every path, including errors (os.Exit would skip them).
func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "memsweep: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	dArg := flag.String("d", "3,5,7", "comma-separated code distances")
	pArg := flag.String("p", "2e-3,4e-3,6e-3", "comma-separated physical error rates")
	rounds := flag.Int("rounds", 6, "QEC rounds")
	shots := flag.Int("shots", 20000, "shots per point (exact budget unless -target-rse is set)")
	seed := flag.Int64("seed", 1, "RNG seed")
	dec := flag.String("decoder", "uf", "decoder: uf, greedy, exact")
	workers := flag.Int("workers", 0, "Monte-Carlo worker pool size (0 = all CPUs; never changes results)")
	targetRSE := flag.Float64("target-rse", 0, "stop each point at this relative standard error (0 = fixed budget)")
	maxShots := flag.Int("max-shots", 0, "shot cap when -target-rse is set (0 = -shots)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at sweep end to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, cerr := os.Create(*cpuProfile)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return cerr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, merr := os.Create(*memProfile)
			if merr == nil {
				defer f.Close()
				runtime.GC() // settle heap so the profile shows retained allocations
				merr = pprof.WriteHeapProfile(f)
			}
			if merr != nil && err == nil {
				err = merr
			}
		}()
	}

	ds, err := cliutil.ParseInts(*dArg)
	if err != nil {
		return err
	}
	ps, err := cliutil.ParseFloats(*pArg)
	if err != nil {
		return err
	}
	var factory sim.DecoderFactory
	switch *dec {
	case "uf":
		factory = decoder.UnionFindFactory()
	case "greedy":
		factory = decoder.GreedyFactory()
	case "exact":
		factory = decoder.ExactFactory(14)
	default:
		return fmt.Errorf("unknown decoder %q", *dec)
	}
	budget := *shots
	if *targetRSE > 0 && *maxShots > 0 {
		budget = *maxShots
	}

	fmt.Printf("%-8s %-10s %-14s %-14s %-14s %-16s %-12s\n",
		"d", "p", "λZ/cycle", "λX/cycle", "λ/cycle", "failures", "shots")
	for _, d := range ds {
		for _, p := range ps {
			c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
			z, x, combined, err := sim.RunMemoryBothOpts(c, noise.Uniform(p), sim.RunOptions{
				Rounds:    *rounds,
				Factory:   factory,
				Shots:     budget,
				Workers:   *workers,
				TargetRSE: *targetRSE,
				Seed:      *seed,
			})
			if err != nil {
				return err
			}
			stopped := ""
			if z.EarlyStopped || x.EarlyStopped {
				stopped = "*"
			}
			fmt.Printf("%-8d %-10.1e %-14.3e %-14.3e %-14.3e %-16s %d+%d%s\n",
				d, p, z.PerRound, x.PerRound, combined,
				fmt.Sprintf("%d+%d", z.Failures, x.Failures), z.Shots, x.Shots, stopped)
		}
	}
	if *targetRSE > 0 {
		fmt.Println("\n(* = point stopped early at the target RSE)")
	}
	return nil
}
