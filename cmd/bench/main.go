// Command bench measures the Monte-Carlo hot path — Sampler.Shot feeding
// UnionFind.DecodeToObs — and writes the results to BENCH_hotpath.json so
// the repository carries a tracked performance baseline across PRs.
//
// For each code distance it builds a memory-experiment DEM, then times a
// single-threaded sample+decode loop (the scalar path every engine worker
// multiplies) and reports shots/sec, ns/shot, and allocs/shot measured via
// runtime.MemStats deltas. The engine section repeats the d points through
// mc.RunBatch to capture scheduling overhead.
//
// Usage:
//
//	bench -out BENCH_hotpath.json                 # refresh the "current" run
//	bench -out BENCH_hotpath.json -as-baseline    # record the baseline slot
//
// The output file holds two runs: "baseline" (the state to beat, preserved
// across refreshes) and "current". Refreshing only replaces "current";
// -as-baseline replaces "baseline" instead. Compare ns/shot point-by-point.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"surfdeformer/internal/cliutil"
	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/traj"
)

// Point is one measured configuration.
type Point struct {
	D         int     `json:"d"`
	P         float64 `json:"p"`
	Rounds    int     `json:"rounds"`
	Shots     int     `json:"shots"`
	ShotsSec  float64 `json:"shots_per_sec"`
	NsShot    float64 `json:"ns_per_shot"`
	AllocShot float64 `json:"allocs_per_shot"`
}

// EnginePoint is one engine-level measurement (sharded batch path).
type EnginePoint struct {
	D        int     `json:"d"`
	Shots    int     `json:"shots"`
	ShotsSec float64 `json:"shots_per_sec"`
	NsShot   float64 `json:"ns_per_shot"`
}

// TrajPoint is one closed-loop trajectory-engine measurement: full
// detect → deform → recover trajectories at quick scale, reported as
// simulated QEC cycles per second. DEMBuilds and DEMPatches are the
// sim.dem.builds / sim.dem.patches counter deltas over the timed loop:
// builds are full merge-and-propagate DEM constructions, patches are the
// incremental re-rates that replaced them on the hot path, so the ratio is
// the tracked evidence the patch fast path is actually engaged.
type TrajPoint struct {
	D int `json:"d"`
	// Patches is the layout size of the layout-traj slot (omitted on the
	// single-patch trajectory and reweight slots).
	Patches      int     `json:"patches,omitempty"`
	Horizon      int64   `json:"horizon"`
	Trajectories int     `json:"trajectories"`
	CyclesSec    float64 `json:"cycles_per_sec"`
	NsCycle      float64 `json:"ns_per_cycle"`
	DEMBuilds    int64   `json:"dem_builds"`
	DEMPatches   int64   `json:"dem_patches"`
}

// Run is one full harness invocation.
type Run struct {
	Label  string        `json:"label"`
	Date   string        `json:"date"`
	CPU    int           `json:"num_cpu"`
	Points []Point       `json:"points"`
	Engine []EnginePoint `json:"engine,omitempty"`
	Traj   []TrajPoint   `json:"trajectory,omitempty"`
	// Reweight times the decoder-prior reweight tier: reweight-only
	// trajectories on a sustained drift-only timeline (rate estimation,
	// overlay construction, and reweighted decode-DEM builds included).
	Reweight []TrajPoint `json:"reweight,omitempty"`
	// Super times the bandage (super-stabilizer) tier: super-only
	// trajectories booted on a fabrication-defective device, so the number
	// includes the boot bandage constructions, gauge-merged DEM builds, and
	// dynamic bandage/release handling on top of a plain trajectory.
	Super []TrajPoint `json:"super,omitempty"`
	// LayoutTraj times the layout-level engine: an N-patch floorplan with
	// routing channels and a lattice-surgery schedule, so the number
	// includes per-patch sampling/decoding, channel bookkeeping, and the
	// router's replanning on top of the single-patch loop.
	LayoutTraj []TrajPoint `json:"layout_traj,omitempty"`
}

// File is the on-disk schema of BENCH_hotpath.json.
type File struct {
	Schema   string `json:"schema"`
	Baseline *Run   `json:"baseline,omitempty"`
	Current  *Run   `json:"current,omitempty"`
}

const schema = "surfdeformer-bench-hotpath/v1"

// main is a thin exit-code shim: all work happens in realMain so the
// profiling defers (CPU-profile flush, heap-profile write) execute on every
// path, including errors.
func main() {
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

func realMain() (err error) {
	out := flag.String("out", "BENCH_hotpath.json", "output file (empty = stdout only)")
	dArg := flag.String("d", "5,9,13", "comma-separated code distances")
	p := flag.Float64("p", 1e-3, "physical error rate")
	rounds := flag.Int("rounds", 0, "QEC rounds (0 = d rounds per point)")
	shots := flag.Int("shots", 20000, "timed shots per point")
	warmup := flag.Int("warmup", 1000, "untimed warmup shots per point")
	label := flag.String("label", "", "run label recorded in the file")
	asBaseline := flag.Bool("as-baseline", false, "write the baseline slot instead of current")
	engine := flag.Bool("engine", true, "also measure the mc engine batch path")
	trajN := flag.Int("traj", 8, "closed-loop trajectories to time (0 disables)")
	reweightN := flag.Int("reweight", 8, "reweight-only drift trajectories to time (0 disables)")
	superN := flag.Int("super", 8, "super-only device-defect trajectories to time (0 disables)")
	layoutTrajN := flag.Int("layout-traj", 4, "2-patch layout trajectories to time (0 disables)")
	gate := flag.Float64("gate", 0, "compare-only regression gate: fail if measured trajectory cycles/sec falls below this fraction of the committed -out file's current slot (no file write)")
	prof := cliutil.AddProfileFlags()
	flag.Parse()

	stop, err := prof.Start("bench")
	if err != nil {
		return err
	}
	defer func() {
		if serr := stop(); serr != nil && err == nil {
			err = serr
		}
	}()

	ds, err := cliutil.ParseInts(*dArg)
	if err != nil {
		return err
	}
	if *gate > 0 {
		// Gate mode measures the trajectory slot only and compares against
		// the committed file instead of rewriting it, so CI can fail a PR
		// that regresses the hot path without churning the tracked baseline.
		if *trajN <= 0 {
			return fmt.Errorf("-gate requires -traj > 0")
		}
		return gateTraj(*out, *gate, *trajN)
	}
	run := &Run{
		Label: *label,
		Date:  time.Now().UTC().Format("2006-01-02"),
		CPU:   runtime.NumCPU(),
	}
	for _, d := range ds {
		r := *rounds
		if r <= 0 {
			r = d
		}
		pt, err := measurePoint(d, *p, r, *shots, *warmup)
		if err != nil {
			return err
		}
		run.Points = append(run.Points, pt)
		fmt.Printf("d=%-3d p=%.0e rounds=%-3d  %12.0f shots/sec  %9.0f ns/shot  %7.2f allocs/shot\n",
			pt.D, pt.P, pt.Rounds, pt.ShotsSec, pt.NsShot, pt.AllocShot)
		if *engine {
			ep, err := measureEngine(d, *p, r, *shots)
			if err != nil {
				return err
			}
			run.Engine = append(run.Engine, ep)
			fmt.Printf("d=%-3d engine (workers=all)   %12.0f shots/sec  %9.0f ns/shot\n",
				ep.D, ep.ShotsSec, ep.NsShot)
		}
	}
	if *trajN > 0 {
		tp, err := measureTraj(*trajN)
		if err != nil {
			return err
		}
		run.Traj = append(run.Traj, tp)
		fmt.Printf("traj d=%-3d horizon=%-5d      %12.0f cycles/sec %9.0f ns/cycle  %d dem builds, %d patches\n",
			tp.D, tp.Horizon, tp.CyclesSec, tp.NsCycle, tp.DEMBuilds, tp.DEMPatches)
	}
	if *reweightN > 0 {
		rp, err := measureReweight(*reweightN)
		if err != nil {
			return err
		}
		run.Reweight = append(run.Reweight, rp)
		fmt.Printf("rewt d=%-3d horizon=%-5d      %12.0f cycles/sec %9.0f ns/cycle  %d dem builds, %d patches\n",
			rp.D, rp.Horizon, rp.CyclesSec, rp.NsCycle, rp.DEMBuilds, rp.DEMPatches)
	}
	if *superN > 0 {
		sp, err := measureSuper(*superN)
		if err != nil {
			return err
		}
		run.Super = append(run.Super, sp)
		fmt.Printf("supr d=%-3d horizon=%-5d      %12.0f cycles/sec %9.0f ns/cycle  %d dem builds, %d patches\n",
			sp.D, sp.Horizon, sp.CyclesSec, sp.NsCycle, sp.DEMBuilds, sp.DEMPatches)
	}
	if *layoutTrajN > 0 {
		lp, err := measureLayoutTraj(*layoutTrajN)
		if err != nil {
			return err
		}
		run.LayoutTraj = append(run.LayoutTraj, lp)
		fmt.Printf("lay  d=%-3d horizon=%-5d n=%d  %12.0f cycles/sec %9.0f ns/cycle  %d dem builds, %d patches\n",
			lp.D, lp.Horizon, lp.Patches, lp.CyclesSec, lp.NsCycle, lp.DEMBuilds, lp.DEMPatches)
	}
	if *out == "" {
		return nil
	}
	f := &File{Schema: schema}
	// Distinguish "no previous file" from a read failure: overwriting on
	// a transient read error would silently destroy the tracked baseline.
	if prev, err := os.ReadFile(*out); err == nil {
		if jerr := json.Unmarshal(prev, f); jerr != nil {
			return fmt.Errorf("existing %s is not a bench file: %v", *out, jerr)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("reading existing %s: %v", *out, err)
	}
	f.Schema = schema
	if *asBaseline {
		f.Baseline = run
	} else {
		f.Current = run
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	if f.Baseline != nil && f.Current != nil {
		for _, cur := range f.Current.Points {
			for _, base := range f.Baseline.Points {
				if base.D == cur.D && base.P == cur.P {
					fmt.Printf("d=%-3d speedup vs baseline: %.2fx (%.0f -> %.0f ns/shot)\n",
						cur.D, base.NsShot/cur.NsShot, base.NsShot, cur.NsShot)
				}
			}
		}
	}
	return nil
}

// gateTraj is the -gate path: measure the trajectory slot, read the
// committed bench file, and fail when the measured throughput drops below
// the given fraction of the tracked current slot. Read-only by design — a
// gate must never move its own goalposts.
func gateTraj(out string, gate float64, trajN int) error {
	blob, err := os.ReadFile(out)
	if err != nil {
		return fmt.Errorf("-gate needs the committed bench file: %v", err)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return fmt.Errorf("%s is not a bench file: %v", out, err)
	}
	if f.Current == nil || len(f.Current.Traj) == 0 {
		return fmt.Errorf("%s has no current trajectory slot to gate against", out)
	}
	committed := f.Current.Traj[0].CyclesSec
	tp, err := measureTraj(trajN)
	if err != nil {
		return err
	}
	floor := gate * committed
	fmt.Printf("traj gate: measured %.0f cycles/sec, committed %.0f, floor %.0f (%.0f%%)\n",
		tp.CyclesSec, committed, floor, 100*gate)
	if tp.CyclesSec < floor {
		return fmt.Errorf("trajectory throughput regressed: %.0f cycles/sec < %.0f%% of committed %.0f",
			tp.CyclesSec, 100*gate, committed)
	}
	return nil
}

// measurePoint times the scalar sample+decode loop for one configuration.
func measurePoint(d int, p float64, rounds, shots, warmup int) (Point, error) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	dem, err := sim.BuildDEM(c, noise.Uniform(p), rounds, lattice.ZCheck)
	if err != nil {
		return Point{}, err
	}
	g := decoder.SharedGraph(dem)
	if err := g.Validate(); err != nil {
		return Point{}, err
	}
	uf := decoder.NewUnionFind(g)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(1))
	sink := false
	for i := 0; i < warmup; i++ {
		flagged, obs := sampler.Shot(rng)
		sink = sink != (uf.DecodeToObs(flagged) != obs)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < shots; i++ {
		flagged, obs := sampler.Shot(rng)
		sink = sink != (uf.DecodeToObs(flagged) != obs)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	_ = sink
	ns := float64(elapsed.Nanoseconds()) / float64(shots)
	return Point{
		D: d, P: p, Rounds: rounds, Shots: shots,
		ShotsSec:  float64(shots) / elapsed.Seconds(),
		NsShot:    ns,
		AllocShot: float64(m1.Mallocs-m0.Mallocs) / float64(shots),
	}, nil
}

// measureEngine times the same configuration through the mc engine so the
// number includes sharding, commit, and scheduling overhead.
func measureEngine(d int, p float64, rounds, shots int) (EnginePoint, error) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	model := noise.Uniform(p)
	opts := sim.RunOptions{
		Rounds:  rounds,
		Basis:   lattice.ZCheck,
		Factory: decoder.UnionFindFactory(),
		Shots:   shots,
		Seed:    1,
	}
	// Warm the DEM/decoder-graph caches so the timed run measures shots,
	// not one-time model construction.
	warm := opts
	warm.Shots = 64
	if _, err := sim.RunMemoryOpts(c, model, nil, warm); err != nil {
		return EnginePoint{}, err
	}
	start := time.Now()
	res, err := sim.RunMemoryOpts(c, model, nil, opts)
	if err != nil {
		return EnginePoint{}, err
	}
	elapsed := time.Since(start)
	return EnginePoint{
		D: d, Shots: res.Shots,
		ShotsSec: float64(res.Shots) / elapsed.Seconds(),
		NsShot:   float64(elapsed.Nanoseconds()) / float64(res.Shots),
	}, nil
}

// measureTraj times the closed-loop trajectory engine: n quick-scale
// Surf-Deformer trajectories on a private DEM cache (one warm-up trajectory
// amortizes nothing across runs, matching a cold scan start).
func measureTraj(n int) (TrajPoint, error) {
	cfg := traj.QuickConfig()
	return measureTrajLoop(cfg, traj.ModeSurfDeformer, n)
}

// measureReweight times the decoder-prior reweight tier end to end: n
// reweight-only trajectories on a sustained drift-only timeline, so the
// number includes window rate estimation, overlay construction, and the
// reweighted decode-DEM patches/builds the tier adds over a plain
// trajectory.
func measureReweight(n int) (TrajPoint, error) {
	cfg := traj.DriftOnlyConfig()
	cfg.Horizon = 400 // quick-scale trajectories, like measureTraj
	return measureTrajLoop(cfg, traj.ModeReweightOnly, n)
}

// measureSuper times the bandage (super-stabilizer) tier end to end: n
// super-only trajectories booted on a fabrication-defective device, so the
// number includes the boot bandage constructions, the gauge-merged nominal
// DEM builds, and dynamic bandage/release handling the tier adds over a
// plain trajectory.
func measureSuper(n int) (TrajPoint, error) {
	cfg := traj.QuickConfig()
	cfg.Device = defect.NewDeviceModel(0.08)
	return measureTrajLoop(cfg, traj.ModeSuperOnly, n)
}

// measureLayoutTraj times the layout-level engine: n quick-scale 2-patch
// Surf-Deformer trajectories with a lattice-surgery schedule, reported in
// patch-weighted simulated cycles so the slot is comparable to the
// single-patch trajectory number.
func measureLayoutTraj(n int) (TrajPoint, error) {
	cfg := traj.QuickConfig()
	cfg.Layout = &traj.LayoutConfig{Patches: 2, Program: "simon", Ops: 8}
	tp, err := measureTrajLoop(cfg, traj.ModeSurfDeformer, n)
	tp.Patches = cfg.Layout.Patches
	return tp, err
}

// measureTrajLoop runs n trajectories of one arm on a private DEM cache and
// reports cycle throughput plus the DEM build/patch counter deltas of the
// timed loop.
func measureTrajLoop(cfg traj.Config, mode traj.Mode, n int) (TrajPoint, error) {
	cfg.Cache = sim.NewDEMCache(0)
	if _, err := traj.Run(cfg, mode, 1); err != nil {
		return TrajPoint{}, err
	}
	builds := obs.Default().Counter("sim.dem.builds")
	patches := obs.Default().Counter("sim.dem.patches")
	builds0, patches0 := builds.Value(), patches.Value()
	var cycles int64
	start := time.Now()
	for i := 0; i < n; i++ {
		res, err := traj.Run(cfg, mode, int64(i+1))
		if err != nil {
			return TrajPoint{}, err
		}
		cycles += res.ElapsedCycles
	}
	elapsed := time.Since(start)
	return TrajPoint{
		D: cfg.D, Horizon: cfg.Horizon, Trajectories: n,
		CyclesSec:  float64(cycles) / elapsed.Seconds(),
		NsCycle:    float64(elapsed.Nanoseconds()) / float64(cycles),
		DEMBuilds:  builds.Value() - builds0,
		DEMPatches: patches.Value() - patches0,
	}, nil
}
