package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchFileSchema pins the tracked BENCH_hotpath.json contract: the
// file parses under this command's File schema, carries the expected
// schema tag, and its "current" run holds every measured section —
// scalar points, engine, trajectory, and the reweight slot — with sane
// positive throughputs. A refresh that drops a section (or a schema
// change that silently orphans the tracked file) fails here instead of
// surfacing as a confusing diff in a later PR.
func TestBenchFileSchema(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_hotpath.json")
	if err != nil {
		t.Fatalf("tracked bench file missing: %v", err)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		t.Fatalf("BENCH_hotpath.json does not parse as a bench file: %v", err)
	}
	if f.Schema != schema {
		t.Fatalf("schema %q, want %q", f.Schema, schema)
	}
	if f.Baseline == nil {
		t.Fatal("baseline slot missing (the run to beat must be preserved across refreshes)")
	}
	cur := f.Current
	if cur == nil {
		t.Fatal("current slot missing")
	}
	if len(cur.Points) == 0 {
		t.Error("current run carries no scalar hot-path points")
	}
	for _, p := range cur.Points {
		if p.ShotsSec <= 0 || p.NsShot <= 0 {
			t.Errorf("d=%d scalar point has non-positive throughput: %+v", p.D, p)
		}
	}
	if len(cur.Engine) == 0 {
		t.Error("current run carries no engine section")
	}
	if len(cur.Traj) == 0 {
		t.Error("current run carries no trajectory section")
	}
	if len(cur.Reweight) == 0 {
		t.Error("current run carries no reweight section (the decoder-prior tier is untracked)")
	}
	for _, p := range cur.Reweight {
		if p.CyclesSec <= 0 || p.Trajectories <= 0 {
			t.Errorf("reweight point has non-positive throughput: %+v", p)
		}
	}
	if len(cur.Super) == 0 {
		t.Error("current run carries no super section (the bandage tier is untracked)")
	}
	for _, p := range cur.Super {
		if p.CyclesSec <= 0 || p.Trajectories <= 0 {
			t.Errorf("super point has non-positive throughput: %+v", p)
		}
	}
	if len(cur.LayoutTraj) == 0 {
		t.Error("current run carries no layout-traj section (the layout engine is untracked)")
	}
	for _, p := range cur.LayoutTraj {
		if p.CyclesSec <= 0 || p.Trajectories <= 0 {
			t.Errorf("layout-traj point has non-positive throughput: %+v", p)
		}
		if p.Patches < 2 {
			t.Errorf("layout-traj point measures %d patches; the slot exists to time a multi-patch floorplan", p.Patches)
		}
	}
	// The incremental-DEM counters must be populated: patches > 0 on every
	// trajectory section (the overlay fast path is engaged — a refresh where
	// patches read zero means the trajectory hot path fell back to full
	// rebuilds and the tracked speedup is fiction), and builds > 0 on the
	// sections whose codes change per trajectory (deformed and gauge-merged
	// codes are seed-specific, so their nominal DEMs always construct). The
	// reweight slot is exempt from the builds floor: it never deforms, and
	// with deterministic code builds its nominal DEMs all hit the warmed
	// shared cache.
	for _, sec := range [][]TrajPoint{cur.Traj, cur.Reweight, cur.Super} {
		for _, p := range sec {
			if p.DEMPatches <= 0 {
				t.Errorf("trajectory point d=%d records no DEM patches (incremental path disengaged): %+v", p.D, p)
			}
		}
	}
	for _, sec := range [][]TrajPoint{cur.Traj, cur.Super} {
		for _, p := range sec {
			if p.DEMBuilds <= 0 {
				t.Errorf("trajectory point d=%d records no DEM builds: %+v", p.D, p)
			}
		}
	}
}
