// Command planner runs the compile-time layout generator (paper §VI) for a
// benchmark program: it reports the code distance d meeting the retry-risk
// target, the extra inter-space Δd from the defect model (Eq. 1), and the
// physical-qubit bill for every layout scheme.
//
// Usage:
//
//	planner -program qft -n 100 -reps 20 -target 0.001
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
)

func main() {
	progName := flag.String("program", "qft", "benchmark: simon, rca, qft, grover")
	n := flag.Int("n", 100, "algorithmic qubit count")
	reps := flag.Int("reps", 20, "repetitions")
	target := flag.Float64("target", 0.001, "retry-risk target")
	trials := flag.Int("trials", 60, "Monte-Carlo trials per distance")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	var prog *program.Program
	switch *progName {
	case "simon":
		prog = program.Simon(*n, *reps)
	case "rca":
		prog = program.RCA(*n, *reps)
	case "qft":
		prog = program.QFT(*n, *reps)
	case "grover":
		prog = program.Grover(*n, *reps)
	default:
		fmt.Fprintf(os.Stderr, "planner: unknown program %q\n", *progName)
		os.Exit(2)
	}

	dm := defect.Paper()
	lm := estimator.DefaultLambda()
	fws := estimator.DefaultFrameworks()
	rng := rand.New(rand.NewSource(*seed))
	deltaDFor := func(d int) int { return layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock) }

	fmt.Printf("program %s: %d logical qubits (+%d factory), %d CX, %d T, ~%d schedule steps\n",
		prog.Name, prog.Qubits, prog.TFactoryQubits(), prog.CX, prog.T, prog.ScheduleSteps())
	fmt.Printf("defect model: rate %.3g /qubit/s, duration %d cycles, region radius %d\n\n",
		dm.RatePerQubit, dm.DurationCycles, dm.Radius)
	fmt.Printf("%-16s %-5s %-5s %-14s %-12s %s\n", "scheme", "d", "Δd", "#qubits", "retry risk", "note")

	for _, scheme := range []layout.Scheme{layout.SurfDeformer, layout.ASCS, layout.Q3DEStar, layout.LatticeSurgery} {
		est, ok := estimator.MinimalDistance(prog, fws[scheme], *target, deltaDFor, dm, lm, *trials, 61, rng)
		note := ""
		if !ok {
			note = "target unreachable by d=61"
		}
		fmt.Printf("%-16s %-5d %-5d %-14.3e %-12.5f %s\n",
			scheme, est.D, est.DeltaD, float64(est.PhysicalQubits), est.RetryRisk, note)
	}
	// Q3DE on the fixed layout stalls rather than failing by logical error.
	q3de := estimator.EstimateProgram(prog, fws[layout.Q3DE], 21, deltaDFor(21), dm, lm, *trials, rng)
	if q3de.OverRuntime {
		fmt.Printf("%-16s %-5s %-5s %-14s %-12s %s\n", layout.Q3DE, "-", "-", "-", "-", "OverRuntime (blocked channels)")
	}
}
