module surfdeformer

go 1.22
