// Quickstart: build a surface-code patch, strike it with a defect, deform
// adaptively, and watch the code distance drop and recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"surfdeformer"
)

func main() {
	// A distance-5 rotated surface code: 25 data qubits, 24 checks.
	patch, err := surfdeformer.NewPatch(5)
	if err != nil {
		log.Fatal(err)
	}
	n, k, l, _ := patch.Params()
	fmt.Printf("fresh patch: [[%d,%d,%d]], distance X=%d Z=%d, %d physical qubits\n",
		n, k, l, patch.DistanceX(), patch.DistanceZ(), patch.NumQubits())

	// A cosmic-ray-like strike: the central data qubit and an adjacent
	// syndrome qubit turn defective.
	defects := []surfdeformer.Coord{
		{Row: 5, Col: 5}, // data qubit
		{Row: 4, Col: 6}, // syndrome qubit (X check)
	}
	if err := patch.RemoveDefects(defects, surfdeformer.PolicySurfDeformer); err != nil {
		log.Fatal(err)
	}
	stabs, gauges := patch.Stabilizers()
	fmt.Printf("after removal: distance X=%d Z=%d, %d stabilizers (+%d gauge ops), %d qubits\n",
		patch.DistanceX(), patch.DistanceZ(), stabs, gauges, patch.NumQubits())
	if err := patch.Validate(); err != nil {
		log.Fatalf("deformed code invalid: %v", err)
	}

	// Adaptive enlargement (Algorithm 2) restores the lost distance with a
	// 2-layer growth budget per side.
	if err := patch.RestoreDistance(5, 5, 2, surfdeformer.PolicySurfDeformer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after enlargement: distance X=%d Z=%d, %d qubits\n",
		patch.DistanceX(), patch.DistanceZ(), patch.NumQubits())

	// Compare against the ASC-S baseline, which sacrifices the healthy
	// neighbours of the defective syndrome qubit and never grows back.
	asc, err := surfdeformer.NewPatch(5)
	if err != nil {
		log.Fatal(err)
	}
	if err := asc.RemoveDefects(defects, surfdeformer.PolicyASC); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ASC-S baseline: distance X=%d Z=%d (no recovery path)\n",
		asc.DistanceX(), asc.DistanceZ())
}
