// Cosmicray simulates the paper's headline scenario: a multi-bit burst
// error (cosmic-ray strike) raises a region of a logical qubit to ≈50%
// physical error rate. The example measures the logical error rate of
//
//  1. the untreated code (decoder unaware of the defect),
//  2. the code with the defect region removed by ASC-S, and
//  3. the code removed + enlarged by Surf-Deformer,
//
// reproducing the fig. 11a mechanism end to end.
//
//	go run ./examples/cosmicray
package main

import (
	"fmt"
	"log"

	"surfdeformer"
)

func main() {
	const d = 7
	const shots = 6000
	const rounds = 6

	// The strike region: a data qubit and its Chebyshev neighbourhood.
	region := []surfdeformer.Coord{
		{Row: 5, Col: 5}, {Row: 5, Col: 7}, {Row: 7, Col: 5},
		{Row: 4, Col: 6}, {Row: 6, Col: 6},
	}

	// 1. Untreated: the defective qubits stay in the code; the decoder
	//    keeps its nominal priors.
	untreated, err := surfdeformer.NewPatch(d)
	if err != nil {
		log.Fatal(err)
	}
	resU, err := untreated.MemoryExperiment(surfdeformer.MemoryOptions{
		Rounds: rounds, Shots: shots, Seed: 11,
		Defective: region,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. ASC-S removal: super-stabilizers everywhere, healthy neighbours
	//    sacrificed for syndrome defects, no enlargement.
	asc, err := surfdeformer.NewPatch(d)
	if err != nil {
		log.Fatal(err)
	}
	if err := asc.RemoveDefects(region, surfdeformer.PolicyASC); err != nil {
		log.Fatal(err)
	}
	resA, err := asc.MemoryExperiment(surfdeformer.MemoryOptions{
		Rounds: rounds, Shots: shots, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Surf-Deformer: adaptive removal + enlargement within a Δd=2
	//    budget.
	surf, err := surfdeformer.NewPatch(d)
	if err != nil {
		log.Fatal(err)
	}
	if err := surf.RemoveDefects(region, surfdeformer.PolicySurfDeformer); err != nil {
		log.Fatal(err)
	}
	if err := surf.RestoreDistance(d, d, 2, surfdeformer.PolicySurfDeformer); err != nil {
		log.Fatal(err)
	}
	resS, err := surf.MemoryExperiment(surfdeformer.MemoryOptions{
		Rounds: rounds, Shots: shots, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("d=%d logical qubit under a %d-qubit 50%% burst (p=1e-3, %d rounds, %d shots)\n\n",
		d, len(region), rounds, shots)
	fmt.Printf("%-28s %-18s %-12s %s\n", "mitigation", "λ per cycle", "distance", "qubits")
	fmt.Printf("%-28s %-18.3e %-12s %d\n", "none (untreated)", resU.PerRound,
		fmt.Sprintf("X=%d Z=%d", untreated.DistanceX(), untreated.DistanceZ()), untreated.NumQubits())
	fmt.Printf("%-28s %-18.3e %-12s %d\n", "ASC-S removal", resA.PerRound,
		fmt.Sprintf("X=%d Z=%d", asc.DistanceX(), asc.DistanceZ()), asc.NumQubits())
	fmt.Printf("%-28s %-18.3e %-12s %d\n", "Surf-Deformer (rm+grow)", resS.PerRound,
		fmt.Sprintf("X=%d Z=%d", surf.DistanceX(), surf.DistanceZ()), surf.NumQubits())

	if resS.PerRound > 0 {
		fmt.Printf("\nuntreated / surf-deformer logical error ratio: %.0fx\n", resU.PerRound/resS.PerRound)
	}
}
