// Throughput demonstrates the layout study of fig. 11c: long-range logical
// CNOTs routed through the ancilla channels of a 100-qubit layout, with
// defect strikes enlarging patches. Q3DE's fixed layout lets enlargements
// swallow the channels; Surf-Deformer's d+Δd spacing keeps them open.
//
// This example drives the internal layout/routing engine directly (it lives
// in the same module), showing the machinery beneath the public API.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"math"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/route"
)

func main() {
	const gridSide = 10 // 100 logical qubits
	const d = 21
	dm := defect.Paper()
	deltaD := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)
	fmt.Printf("layout: %dx%d logical qubits, d=%d, Δd=%d (Eq. 1)\n\n", gridSide, gridSide, d, deltaD)

	rng := rand.New(rand.NewSource(7))
	// A workload of 60 long-range CNOTs across the grid.
	var ops []route.CNOT
	for i := 0; i < 60; i++ {
		a := rng.Intn(gridSide * gridSide)
		b := (a + 13 + 7*i) % (gridSide * gridSide)
		if a == b {
			b = (b + 1) % (gridSide * gridSide)
		}
		ops = append(ops, route.CNOT{Control: a, Target: b})
	}

	fmt.Printf("%-14s %-22s %-12s %-10s\n", "defect rate", "scheme", "throughput", "stalled")
	for _, rate := range []float64{0, 1e-4, 2e-4} {
		for _, scheme := range []layout.Scheme{layout.SurfDeformer, layout.Q3DE} {
			grid := route.NewGrid(gridSide, gridSide)
			lambda := rate * float64(2*d*d) * 2.0 // 2 s task-set exposure
			for cell := 0; cell < gridSide*gridSide; cell++ {
				strikes := 0
				// Poisson by inversion.
				l, p := math.Exp(-lambda), 1.0
				for {
					p *= rng.Float64()
					if p <= l {
						break
					}
					strikes++
				}
				switch scheme {
				case layout.Q3DE:
					if strikes > 0 {
						grid.SetBlocked(cell, true) // doubling blocks channels
					}
				case layout.SurfDeformer:
					if strikes > deltaD/(2*dm.Radius) {
						grid.SetBlocked(cell, true) // growth exceeded the reserve
					}
				}
			}
			res := grid.RunTasks(ops, 600, rand.New(rand.NewSource(3)))
			fmt.Printf("%-14.1e %-22s %-12.3f %-10v\n", rate, scheme, res.Throughput, res.Stalled)
		}
	}
	fmt.Println("\nQ3DE loses throughput as soon as enlargements appear; the Δd reserve keeps")
	fmt.Println("Surf-Deformer's channels open at the same defect rates (fig. 11c / fig. 10).")
}
