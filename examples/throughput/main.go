// Throughput demonstrates the two throughput stories of the repository:
//
//  1. The layout study of fig. 11c — long-range logical CNOTs routed
//     through the ancilla channels of a 100-qubit layout, with defect
//     strikes enlarging patches. Q3DE's fixed layout lets enlargements
//     swallow the channels; Surf-Deformer's d+Δd spacing keeps them open.
//  2. The Monte-Carlo engine — the same d=7 memory experiment decoded at
//     Workers = 1, 4 and NumCPU, showing shots/second scaling with the
//     failure counts staying bit-identical (parallelism is purely a
//     throughput knob; the per-shard RNG streams pin the statistics).
//
// This example drives the internal engines directly (it lives in the same
// module), showing the machinery beneath the public API.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/route"
	"surfdeformer/internal/sim"

	deformcode "surfdeformer/internal/code"
)

func main() {
	const gridSide = 10 // 100 logical qubits
	const d = 21
	dm := defect.Paper()
	deltaD := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)
	fmt.Printf("layout: %dx%d logical qubits, d=%d, Δd=%d (Eq. 1)\n\n", gridSide, gridSide, d, deltaD)

	rng := rand.New(rand.NewSource(7))
	// A workload of 60 long-range CNOTs across the grid.
	var ops []route.CNOT
	for i := 0; i < 60; i++ {
		a := rng.Intn(gridSide * gridSide)
		b := (a + 13 + 7*i) % (gridSide * gridSide)
		if a == b {
			b = (b + 1) % (gridSide * gridSide)
		}
		ops = append(ops, route.CNOT{Control: a, Target: b})
	}

	fmt.Printf("%-14s %-22s %-12s %-10s\n", "defect rate", "scheme", "throughput", "stalled")
	for _, rate := range []float64{0, 1e-4, 2e-4} {
		for _, scheme := range []layout.Scheme{layout.SurfDeformer, layout.Q3DE} {
			grid := route.NewGrid(gridSide, gridSide)
			lambda := rate * float64(2*d*d) * 2.0 // 2 s task-set exposure
			for cell := 0; cell < gridSide*gridSide; cell++ {
				strikes := 0
				// Poisson by inversion.
				l, p := math.Exp(-lambda), 1.0
				for {
					p *= rng.Float64()
					if p <= l {
						break
					}
					strikes++
				}
				switch scheme {
				case layout.Q3DE:
					if strikes > 0 {
						grid.SetBlocked(cell, true) // doubling blocks channels
					}
				case layout.SurfDeformer:
					if strikes > deltaD/(2*dm.Radius) {
						grid.SetBlocked(cell, true) // growth exceeded the reserve
					}
				}
			}
			res := grid.RunTasks(ops, 600)
			fmt.Printf("%-14.1e %-22s %-12.3f %-10v\n", rate, scheme, res.Throughput, res.Stalled)
		}
	}
	fmt.Println("\nQ3DE loses throughput as soon as enlargements appear; the Δd reserve keeps")
	fmt.Println("Surf-Deformer's channels open at the same defect rates (fig. 11c / fig. 10).")

	decodeThroughput()
}

// decodeThroughput runs the same d=7 memory experiment at increasing
// worker counts on the Monte-Carlo engine.
func decodeThroughput() {
	const (
		d      = 7
		rounds = 6
		shots  = 40000
		p      = 2e-3
	)
	c := deformcode.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	fmt.Printf("\nMonte-Carlo engine: d=%d memory-Z, %d rounds, %d shots, p=%.0e\n\n", d, rounds, shots, p)
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "workers", "failures", "shots/sec", "speedup")
	var base float64
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		start := time.Now()
		res, err := sim.RunMemoryOpts(c, noise.Uniform(p), nil, sim.RunOptions{
			Rounds:  rounds,
			Basis:   lattice.ZCheck,
			Factory: decoder.UnionFindFactory(),
			Shots:   shots,
			Workers: workers,
			Seed:    1,
		})
		if err != nil {
			fmt.Println("engine error:", err)
			return
		}
		rate := float64(shots) / time.Since(start).Seconds()
		if base == 0 {
			base = rate
		}
		fmt.Printf("%-10d %-12d %-12.0f %.2fx\n", workers, res.Failures, rate, rate/base)
	}
	fmt.Println("\nIdentical failure counts at every worker count: the engine's sharded RNG")
	fmt.Println("streams make parallelism a pure throughput knob.")
}
