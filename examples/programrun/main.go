// Programrun is the end-to-end workflow of the paper's fig. 5: compile a
// quantum program to a surface-code layout, plan the code distance and the
// Δd growth reserve, then drive the runtime deformation unit through a
// sequence of cosmic-ray strikes on one of the logical patches.
//
//	go run ./examples/programrun
package main

import (
	"fmt"
	"log"

	"surfdeformer"
)

func main() {
	// Compile-time: the layout generator picks d and Δd for QFT-25-160 at
	// a 1% retry-risk target.
	prog := surfdeformer.QFT(25, 160)
	fmt.Printf("program %s: %d logical qubits, %d CX, %d T\n", prog.Name, prog.Qubits, prog.CX, prog.T)

	plan, err := surfdeformer.PlanProgram(prog, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: d=%d, Δd=%d, %.3e physical qubits, estimated retry risk %.3f%%\n\n",
		plan.D, plan.DeltaD, float64(plan.PhysicalQubits), 100*plan.RetryRisk)

	// Runtime: one deformation unit per logical patch. Strike patch 0 with
	// three successive defect reports and watch the unit keep the distance
	// at target.
	unit := plan.NewUnit(0)
	strikes := [][]surfdeformer.Coord{
		{{Row: 5, Col: 5}},                   // interior data qubit
		{{Row: 4, Col: 6}, {Row: 5, Col: 7}}, // syndrome + data pair
		{{Row: 1, Col: 1}},                   // corner qubit (balancing case)
	}
	for i, report := range strikes {
		res, err := unit.Step(report)
		if err != nil {
			log.Fatalf("deformation step %d: %v", i+1, err)
		}
		grew := ""
		for side, n := range res.Layers {
			if n > 0 {
				grew += fmt.Sprintf(" +%d@%v", n, side)
			}
		}
		fmt.Printf("strike %d: %d new defects, distances X=%d Z=%d, removed=%d%s\n",
			i+1, len(res.Defects), res.DistanceX, res.DistanceZ, res.NumRemoved, grew)
		if err := res.Code.Validate(); err != nil {
			log.Fatalf("deformed code invalid after step %d: %v", i+1, err)
		}
	}
	fmt.Println("\nall strikes absorbed; the patch never dropped below its planned distance")
}
