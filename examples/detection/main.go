// Detection demonstrates the closed runtime loop of the paper's fig. 5 at
// trajectory scale: a logical patch lives through hundreds of QEC cycles
// while cosmic-ray strikes, leakage events and error drift arrive
// stochastically. The sliding-window detector localizes each severe defect
// from the syndrome stream alone, the code deformation unit removes the
// region and restores distance within the Δd reserve, and — when the defect
// subsides — the unit re-incorporates the recovered qubits and shrinks
// back. Three arms run the identical defect timelines: Surf-Deformer, the
// ASC-S policy (removal only, no enlargement), and an untreated baseline
// whose decoder keeps its nominal priors.
//
//	go run ./examples/detection
package main

import (
	"fmt"
	"log"
	"os"

	"surfdeformer/internal/experiments"
	"surfdeformer/internal/traj"
)

func main() {
	opt := experiments.QuickOptions()
	opt.Trials = 8       // trajectories per arm
	opt.PointWorkers = 4 // never changes results, only wall clock
	cfg := traj.QuickConfig()

	fmt.Printf("closed-loop trajectories: d=%d patch, %d cycles, %d trajectories per arm\n",
		cfg.D, cfg.Horizon, opt.Trials)
	fmt.Printf("defect processes: cosmic strikes (~50%% regions), leakage (~25%% neighbourhoods), drift (10×p)\n\n")

	rows, err := experiments.TrajectoryScan(opt, cfg, experiments.DefaultTrajModes())
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderTraj(os.Stdout, cfg.Horizon, rows)

	fmt.Println()
	fmt.Println("reading the table: the three arms face identical defect timelines (paired")
	fmt.Println("seeds), so differences are policy. The untreated arm pays for every active")
	fmt.Println("defect with logical failures (fail/1k); the treated arms detect regions")
	fmt.Println("within one-two window lengths (latency, in cycles) and deform. At this toy")
	fmt.Println("scale — d=5 against 5-site strikes — removal often severs the patch for")
	fmt.Println("either policy, and only Surf-Deformer ever grows (blocked%). Run the")
	fmt.Println("representative comparison at d=9 with:")
	fmt.Println()
	fmt.Println("    go run ./cmd/surfdeform -trials 50 -point-workers 8 traj")
}
