// Detection demonstrates the full runtime loop of the paper's fig. 5 with a
// real statistical defect detector instead of an oracle: a cosmic-ray
// strike lands mid-run, the sliding-window detector localizes it from the
// syndrome stream alone, and the code deformation unit mitigates the
// detected region.
//
//	go run ./examples/detection
package main

import (
	"fmt"
	"log"

	"surfdeformer/internal/experiments"
)

func main() {
	opt := experiments.Defaults()
	opt.Trials = 30
	fmt.Println("integrated detection → deformation loop (d=9, strike at round 6):")
	fmt.Println()
	res, err := experiments.DetectionPipeline(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trials:                 %d\n", res.Trials)
	fmt.Printf("  strikes detected:       %d (%.0f%%)\n", res.Detected,
		100*float64(res.Detected)/float64(res.Trials))
	fmt.Printf("  detection latency:      %.1f rounds after onset\n", res.DetectionLatency)
	fmt.Printf("  region recall:          %.2f\n", res.Recall)
	fmt.Printf("  region precision:       %.2f\n", res.Precision)
	fmt.Printf("  distance after repair:  %.2f (target 9)\n", res.DistanceAfter)
	fmt.Println()
	fmt.Println("the window detector needs no hardware support: a region erroring at 50%")
	fmt.Println("fires its checks nearly every round, so a rate threshold over a sliding")
	fmt.Println("window of syndrome history localizes it within roughly one window length.")
}
