// Detection demonstrates the closed runtime loop of the paper's fig. 5 at
// trajectory scale: a logical patch lives through hundreds of QEC cycles
// while cosmic-ray strikes, leakage events and error drift arrive
// stochastically, and the runtime climbs the §VIII mitigation ladder. The
// sliding-window detector localizes each severe defect from the syndrome
// stream alone and the code deformation unit removes the region within the
// Δd reserve; milder sustained elevations are routed to the decoder-prior
// reweight tier instead — the window's rate estimates are inverted into
// per-site multipliers and overlaid on the decode model without touching
// the code. Four arms run the identical defect timelines: Surf-Deformer
// (both tiers), the ASC-S policy (removal only, no enlargement), a
// reweight-only ablation (priors only, no deformation), and an untreated
// baseline whose decoder keeps its nominal priors.
//
//	go run ./examples/detection
package main

import (
	"fmt"
	"log"
	"os"

	"surfdeformer/internal/experiments"
	"surfdeformer/internal/traj"
)

func main() {
	opt := experiments.QuickOptions()
	opt.Trials = 8       // trajectories per arm
	opt.PointWorkers = 4 // never changes results, only wall clock
	cfg := traj.QuickConfig()

	fmt.Printf("closed-loop trajectories: d=%d patch, %d cycles, %d trajectories per arm\n",
		cfg.D, cfg.Horizon, opt.Trials)
	fmt.Printf("defect processes: cosmic strikes (~50%% regions), leakage (~25%% neighbourhoods), drift (10×p)\n")
	fmt.Printf("mitigation ladder: deform severe defects, reweight decode priors for mild drift\n\n")

	rows, err := experiments.TrajectoryScan(opt, cfg, experiments.DefaultTrajModes())
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderTraj(os.Stdout, cfg.Horizon, rows)

	fmt.Println()
	fmt.Println("reading the table: the four arms face identical defect timelines (paired")
	fmt.Println("seeds), so differences are policy. The untreated arm pays for every active")
	fmt.Println("defect with logical failures (fail/1k) and spends its defect-laden cycles in")
	fmt.Println("prior mismatch (mismatch%); the reweight-only arm converts part of that")
	fmt.Println("mismatch into estimated-prior decoding (rw%, with rate-err the mean gap")
	fmt.Println("between estimated and true site rates) and cuts the failure rate without")
	fmt.Println("touching the code. The deforming arms detect severe regions within one-two")
	fmt.Println("window lengths (latency, in cycles) and remove them. At this toy scale —")
	fmt.Println("d=5 against 5-site strikes — removal often severs the patch for either")
	fmt.Println("policy, and only Surf-Deformer ever grows (blocked%). Run the")
	fmt.Println("representative comparison at d=9 with:")
	fmt.Println()
	fmt.Println("    go run ./cmd/surfdeform -trials 50 -point-workers 8 traj")
}
