package surfdeformer

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one testing.B per experiment; see DESIGN.md §3) plus the
// ablation studies of DESIGN.md §4. Benchmarks run the Quick experiment
// configurations so `go test -bench=. -benchmem` completes on a laptop; the
// cmd/surfdeform CLI runs the full-scale versions.
//
// Reported custom metrics carry the experiment's headline quantity so the
// bench output doubles as a results table.

import (
	"io"
	"math/rand"
	"slices"
	"testing"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/experiments"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/program"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/traj"
)

func quickOpts(seed int64) experiments.Options {
	o := experiments.QuickOptions()
	o.Seed = seed
	return o
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	var lastSurf, lastASC float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		lastSurf, lastASC = rows[0].SurfRetryRisk, rows[0].ASCRetryRisk
	}
	b.ReportMetric(lastSurf, "surf-risk")
	b.ReportMetric(lastASC, "asc-risk")
	if lastSurf > 0 {
		b.ReportMetric(lastASC/lastSurf, "asc/surf-risk-ratio")
	}
}

func BenchmarkFig11a(b *testing.B) {
	var untreated, removed float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11a(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		untreated, removed = last.UntreatedLE, last.RemovedLE
	}
	b.ReportMetric(untreated, "untreated-λ")
	b.ReportMetric(removed, "removed-λ")
}

func BenchmarkFig11b(b *testing.B) {
	var asc, surf float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11b(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		asc, surf = last.ASCMean, last.SurfMean
	}
	b.ReportMetric(asc, "asc-distance")
	b.ReportMetric(surf, "surf-distance")
}

func BenchmarkFig11c(b *testing.B) {
	var surfTh, q3deTh float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11c(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DefectRate == 2e-4 && r.TaskSet == 1 {
				if r.Scheme == layout.SurfDeformer {
					surfTh = r.Throughput
				} else {
					q3deTh = r.Throughput
				}
			}
		}
	}
	b.ReportMetric(surfTh, "surf-throughput")
	b.ReportMetric(q3deTh, "q3de-throughput")
}

func BenchmarkFig12(b *testing.B) {
	var surfQ, lsQ float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case layout.SurfDeformer:
				surfQ = float64(r.Qubits)
			case layout.LatticeSurgery:
				lsQ = float64(r.Qubits)
			}
		}
	}
	b.ReportMetric(surfQ, "surf-qubits")
	if surfQ > 0 {
		b.ReportMetric(lsQ/surfQ, "ls/surf-qubit-ratio")
	}
}

func BenchmarkFig13a(b *testing.B) {
	var surfRisk, ascRisk float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13a(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.D == 19 {
				if r.Scheme == layout.SurfDeformer {
					surfRisk = r.Risk
				} else {
					ascRisk = r.Risk
				}
			}
		}
	}
	b.ReportMetric(surfRisk, "surf-risk@d19")
	b.ReportMetric(ascRisk, "asc-risk@d19")
}

func BenchmarkFig13b(b *testing.B) {
	var ascY, surfY float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13b(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ascY, surfY = last.ASCYield, last.SurfYield
	}
	b.ReportMetric(ascY, "asc-yield")
	b.ReportMetric(surfY, "surf-yield")
}

func BenchmarkFig14a(b *testing.B) {
	var untreated, removed float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14a(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		untreated, removed = last.UntreatedLE, last.RemovedLE
	}
	b.ReportMetric(untreated, "untreated-λ")
	b.ReportMetric(removed, "removed-λ")
}

func BenchmarkFig14b(b *testing.B) {
	var precise, imprecise float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14b(quickOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		precise, imprecise = last.PreciseLE, last.ImpreciseLE
	}
	b.ReportMetric(precise, "precise-λ")
	b.ReportMetric(imprecise, "imprecise-λ")
}

// BenchmarkTrajectory measures the closed-loop trajectory engine: one full
// quick-scale trajectory (detect → deform → recover) per iteration, with
// cycles/sec as the headline custom metric (tracked alongside the hot-path
// numbers in BENCH_hotpath.json via cmd/bench).
func BenchmarkTrajectory(b *testing.B) {
	cfg := traj.QuickConfig()
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := traj.Run(cfg, traj.ModeSurfDeformer, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ElapsedCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkReweight measures the decoder-prior reweight tier: one full
// reweight-only trajectory on a sustained drift-only timeline per
// iteration — rate estimation, overlay construction, and the reweighted
// decode-DEM builds included. cycles/sec is the headline custom metric
// (tracked in BENCH_hotpath.json's "reweight" slot via cmd/bench); the
// reweighted-cycles fraction confirms the tier actually engaged.
func BenchmarkReweight(b *testing.B) {
	cfg := traj.DriftOnlyConfig()
	cfg.Horizon = 400 // one quick-scale trajectory per iteration
	var cycles, reweighted int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := traj.Run(cfg, traj.ModeReweightOnly, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ElapsedCycles
		reweighted += res.ReweightedCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
	b.ReportMetric(float64(reweighted)/float64(cycles), "reweighted-frac")
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §4)
// ---------------------------------------------------------------------------

// BenchmarkAblationBalancing compares the balanced boundary cut against the
// ASC-style fixed-Z cut on corner defects (fig. 8).
func BenchmarkAblationBalancing(b *testing.B) {
	corner := lattice.Coord{Row: 1, Col: 9}
	var balanced, fixed float64
	for i := 0; i < b.N; i++ {
		s1 := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
		if err := deform.ApplyDefects(s1, []lattice.Coord{corner}, deform.PolicySurfDeformer); err != nil {
			b.Fatal(err)
		}
		c1, err := s1.Build()
		if err != nil {
			b.Fatal(err)
		}
		balanced = float64(c1.Distance())

		s2 := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
		if err := deform.ApplyDefects(s2, []lattice.Coord{corner}, deform.PolicyASC); err != nil {
			b.Fatal(err)
		}
		c2, err := s2.Build()
		if err != nil {
			b.Fatal(err)
		}
		fixed = float64(c2.Distance())
	}
	b.ReportMetric(balanced, "balanced-distance")
	b.ReportMetric(fixed, "fixed-z-distance")
}

// BenchmarkAblationSyndromeRM compares SyndromeQ_RM against ASC's four
// DataQ_RM applications for an interior syndrome defect (fig. 7a).
func BenchmarkAblationSyndromeRM(b *testing.B) {
	target := lattice.Coord{Row: 4, Col: 6}
	var surfZ, ascZ float64
	for i := 0; i < b.N; i++ {
		s1 := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
		if err := s1.SyndromeQRM(target); err != nil {
			b.Fatal(err)
		}
		c1, err := s1.Build()
		if err != nil {
			b.Fatal(err)
		}
		surfZ = float64(c1.DistanceZ())

		s2 := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
		if err := deform.ApplyDefects(s2, []lattice.Coord{target}, deform.PolicyASC); err != nil {
			b.Fatal(err)
		}
		c2, err := s2.Build()
		if err != nil {
			b.Fatal(err)
		}
		ascZ = float64(c2.DistanceZ())
	}
	b.ReportMetric(surfZ, "syndromeqrm-dZ")
	b.ReportMetric(ascZ, "asc-4x-dataqrm-dZ")
}

// BenchmarkAblationEnlarge compares adaptive enlargement against Q3DE-style
// fixed doubling in added-qubit cost for a single interior defect.
func BenchmarkAblationEnlarge(b *testing.B) {
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		s := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 7)
		if err := s.DataQRM(lattice.Coord{Row: 7, Col: 7}); err != nil {
			b.Fatal(err)
		}
		before, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		res, err := deform.Enlarge(s, 7, 7, nil, deform.PolicySurfDeformer, deform.UniformBudget(7))
		if err != nil {
			b.Fatal(err)
		}
		adaptive = float64(res.Code.NumQubits() - before.NumQubits())
		// Q3DE doubles: a 14x14 patch instead of 7x7.
		fixed = float64(2*14*14 - 1 - (2*7*7 - 1))
	}
	b.ReportMetric(adaptive, "adaptive-added-qubits")
	b.ReportMetric(fixed, "q3de-added-qubits")
}

// BenchmarkAblationInterspace sweeps Δd and reports Eq. 1's blocking
// probability at the paper's λ.
func BenchmarkAblationInterspace(b *testing.B) {
	dm := defect.Paper()
	lambda := dm.PoissonLambda(2*27*27, float64(dm.DurationCycles)*dm.CycleSeconds)
	var p2, p4, p8 float64
	for i := 0; i < b.N; i++ {
		p2 = defect.PBlock(lambda, 2, 4)
		p4 = defect.PBlock(lambda, 4, 4)
		p8 = defect.PBlock(lambda, 8, 4)
	}
	b.ReportMetric(p2, "pblock-Δd2")
	b.ReportMetric(p4, "pblock-Δd4")
	b.ReportMetric(p8, "pblock-Δd8")
}

// BenchmarkAblationDecoder compares union-find, greedy and exact decoding
// failure counts on identical shots (validates the PyMatching
// substitution).
func BenchmarkAblationDecoder(b *testing.B) {
	c, err := NewPatch(3)
	if err != nil {
		b.Fatal(err)
	}
	_ = c
	dem, err := buildBenchDEM()
	if err != nil {
		b.Fatal(err)
	}
	g := decoder.NewGraph(dem)
	uf := decoder.NewUnionFind(g)
	gr := decoder.NewGreedy(g)
	ex := decoder.NewExact(g, 12)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(9))
	type shot struct {
		flagged []int32
		obs     bool
	}
	shots := make([]shot, 400)
	for i := range shots {
		f, o := sampler.Shot(rng)
		// Shot returns sampler-owned scratch; clone to keep it.
		shots[i] = shot{slices.Clone(f), o}
	}
	var ufFail, grFail, exFail float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ufFail, grFail, exFail = 0, 0, 0
		for _, s := range shots {
			if uf.DecodeToObs(s.flagged) != s.obs {
				ufFail++
			}
			if gr.DecodeToObs(s.flagged) != s.obs {
				grFail++
			}
			if ex.DecodeToObs(s.flagged) != s.obs {
				exFail++
			}
		}
	}
	b.ReportMetric(ufFail, "uf-failures")
	b.ReportMetric(grFail, "greedy-failures")
	b.ReportMetric(exFail, "exact-failures")
}

func buildBenchDEM() (*sim.DEM, error) {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
	c, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return sim.BuildDEM(c, noise.Uniform(5e-3), 4, lattice.ZCheck)
}

// BenchmarkCalibration measures the Λ-model fit (estimator substrate). The
// rates are chosen high enough that every calibration point sees failures
// at this shot budget.
func BenchmarkCalibration(b *testing.B) {
	var a, pth float64
	for i := 0; i < b.N; i++ {
		m, _, err := estimator.Calibrate([]float64{5e-3, 8e-3}, []int{3, 5}, 4, 1500,
			decoder.UnionFindFactory(), int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		a, pth = m.A, m.PThreshold
	}
	b.ReportMetric(a, "fitted-A")
	b.ReportMetric(pth, "fitted-pth")
}

// BenchmarkDeformationUnitStep measures the runtime cost of one full
// deformation round (Algorithm 1 + Algorithm 2 + rebuild) — the paper's
// "deformation within a single QEC cycle" claim concerns the schedule
// update, and this measures the controller work.
func BenchmarkDeformationUnitStep(b *testing.B) {
	var prog *program.Program
	_ = prog
	for i := 0; i < b.N; i++ {
		u := deform.NewUnit(lattice.Coord{Row: 0, Col: 0}, 9, 9,
			deform.PolicySurfDeformer, deform.UniformBudget(2))
		if _, err := u.Step([]lattice.Coord{{Row: 9, Col: 9}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDEMBuild measures detector-error-model construction (the
// simulator substrate's one-time cost per configuration).
func BenchmarkDEMBuild(b *testing.B) {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 7)
	c, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	model := noise.Uniform(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.BuildDEM(c, model, 6, lattice.ZCheck); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCEngine measures Monte-Carlo engine throughput on a d=7
// memory experiment at increasing worker counts. Failure counts are
// bit-identical across the variants (deterministic per-shard RNG
// streams); only shots/second changes. On multi-core hardware the
// Workers=4 variant should deliver ≥2× the sequential throughput.
func BenchmarkMCEngine(b *testing.B) {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 7)
	c, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	model := noise.Uniform(2e-3)
	const shots = 20000
	variants := []struct {
		name    string
		workers int
	}{
		{"Workers=1", 1},
		{"Workers=4", 4},
		{"Workers=NumCPU", 0},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var failures int
			for i := 0; i < b.N; i++ {
				res, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
					Rounds:  6,
					Basis:   lattice.ZCheck,
					Factory: decoder.UnionFindFactory(),
					Shots:   shots,
					Workers: v.workers,
					Seed:    1,
				})
				if err != nil {
					b.Fatal(err)
				}
				failures = res.Failures
			}
			b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/sec")
			b.ReportMetric(float64(failures), "failures")
		})
	}
}

// BenchmarkMCEngineAdaptive measures the early-stopping win: the same
// experiment with a 10% target RSE against the full fixed budget.
func BenchmarkMCEngineAdaptive(b *testing.B) {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, 5)
	c, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	model := noise.Uniform(5e-3)
	var spent float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
			Rounds:    4,
			Basis:     lattice.ZCheck,
			Factory:   decoder.UnionFindFactory(),
			Shots:     200000,
			TargetRSE: 0.1,
			Seed:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		spent = float64(res.Shots)
	}
	b.ReportMetric(spent, "shots-spent")
	b.ReportMetric(200000, "shots-budget")
}

// BenchmarkDecodeShot measures steady-state per-shot decode cost. It must
// report 0 allocs/op — the CI alloc-regression gate greps for it, and
// TestDecodeZeroAllocs/TestShotZeroAllocs enforce the same contract.
func BenchmarkDecodeShot(b *testing.B) {
	dem, err := buildBenchDEM()
	if err != nil {
		b.Fatal(err)
	}
	uf := decoder.NewUnionFind(decoder.NewGraph(dem))
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flagged, _ := sampler.Shot(rng)
		uf.DecodeToObs(flagged)
	}
}

// BenchmarkSamplerShot isolates steady-state sampling cost (no decode).
// Like BenchmarkDecodeShot it must report 0 allocs/op.
func BenchmarkSamplerShot(b *testing.B) {
	dem, err := buildBenchDEM()
	if err != nil {
		b.Fatal(err)
	}
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flagged, _ := sampler.Shot(rng)
		_ = flagged
	}
}
