package surfdeformer

import "testing"

func TestPatchLifecycle(t *testing.T) {
	p, err := NewPatch(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Distance() != 5 {
		t.Fatalf("fresh patch distance %d, want 5", p.Distance())
	}
	n, k, l, err := p.Params()
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || k != 1 || l != 0 {
		t.Errorf("[[%d,%d,%d]], want [[25,1,0]]", n, k, l)
	}

	// Strike the centre, remove, verify distance loss, restore.
	defects := []Coord{{Row: 5, Col: 5}}
	if err := p.RemoveDefects(defects, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("deformed patch invalid: %v", err)
	}
	if p.Distance() >= 5 {
		t.Errorf("distance %d after removal, want < 5", p.Distance())
	}
	stabs, gauges := p.Stabilizers()
	if gauges == 0 {
		t.Error("removal should introduce gauge operators")
	}
	_ = stabs
	if err := p.RestoreDistance(5, 5, 2, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if p.DistanceX() < 5 || p.DistanceZ() < 5 {
		t.Errorf("distances %d/%d after restore, want >= 5", p.DistanceX(), p.DistanceZ())
	}
}

func TestRectPatchAndEnlarge(t *testing.T) {
	p, err := NewRectPatch(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.DistanceZ() != 3 || p.DistanceX() != 5 {
		t.Fatalf("distances %d/%d, want Z=3 X=5", p.DistanceZ(), p.DistanceX())
	}
	if err := p.Enlarge(Right, 2); err != nil {
		t.Fatal(err)
	}
	if p.DistanceZ() != 5 {
		t.Errorf("DistanceZ %d after growth, want 5", p.DistanceZ())
	}
	if _, err := NewRectPatch(1, 5); err == nil {
		t.Error("degenerate patch must be rejected")
	}
}

func TestMemoryExperimentAPI(t *testing.T) {
	p, err := NewPatch(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MemoryExperiment(MemoryOptions{
		PhysicalErrorRate: 5e-3,
		Rounds:            4,
		Shots:             1500,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogicalErrorRate <= 0 {
		t.Error("d=3 at p=5e-3 should fail sometimes")
	}
	if res.PerRound <= 0 || res.PerRound > 0.5 {
		t.Errorf("per-round rate %v out of range", res.PerRound)
	}
}

func TestMemoryExperimentWithDefects(t *testing.T) {
	p, err := NewPatch(5)
	if err != nil {
		t.Fatal(err)
	}
	hot := []Coord{{Row: 5, Col: 5}}
	unaware, err := p.MemoryExperiment(MemoryOptions{
		Rounds: 4, Shots: 1200, Seed: 3,
		Defective: hot,
	})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := p.MemoryExperiment(MemoryOptions{
		Rounds: 4, Shots: 1200, Seed: 3,
		Defective: hot, DecoderAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aware.LogicalErrorRate > unaware.LogicalErrorRate {
		t.Errorf("informed decoder (%.4f) should beat uninformed (%.4f)",
			aware.LogicalErrorRate, unaware.LogicalErrorRate)
	}
}

func TestPlanProgramAPI(t *testing.T) {
	plan, err := PlanProgram(Grover(9, 80), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if plan.D < 3 || plan.D%2 == 0 {
		t.Errorf("planned distance %d should be odd and >= 3", plan.D)
	}
	if plan.DeltaD < 1 {
		t.Errorf("planned Δd %d should be positive", plan.DeltaD)
	}
	if plan.RetryRisk > 0.01 {
		t.Errorf("plan risk %.4f misses target", plan.RetryRisk)
	}
	if plan.PhysicalQubits <= 0 {
		t.Error("plan must count physical qubits")
	}
	unit := plan.NewUnit(0)
	step, err := unit.Step([]Coord{{Row: 1, Col: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if step.Code == nil {
		t.Fatal("unit step must produce a code")
	}
}

func TestReincorporateAPI(t *testing.T) {
	p, err := NewPatch(5)
	if err != nil {
		t.Fatal(err)
	}
	defects := []Coord{{Row: 5, Col: 5}}
	if err := p.RemoveDefects(defects, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if p.Distance() >= 5 {
		t.Fatal("removal should cost distance")
	}
	if err := p.Reincorporate(defects); err != nil {
		t.Fatal(err)
	}
	if p.Distance() != 5 {
		t.Errorf("distance %d after recovery, want 5", p.Distance())
	}
	if s, g := p.Stabilizers(); g != 0 {
		t.Errorf("gauges %d after recovery, want 0 (%d stabs)", g, s)
	}
}

func TestPlanSystemAPI(t *testing.T) {
	plan, err := PlanProgram(Simon(9, 5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sys := plan.NewSystem()
	if sys.NumPatches() != 9 {
		t.Fatalf("system has %d patches, want 9", sys.NumPatches())
	}
	if sys.Blocked(0) {
		t.Error("fresh system must not block channels")
	}
}

func TestStandaloneUnit(t *testing.T) {
	u := NewStandaloneUnit(5, 2)
	res, err := u.Step([]Coord{{Row: 5, Col: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistanceX < 5 || res.DistanceZ < 5 {
		t.Errorf("unit distances %d/%d, want restored to 5", res.DistanceX, res.DistanceZ)
	}
	if !res.Enlarged {
		t.Error("restoring an interior defect requires enlargement")
	}
}
